"""Greedy submodular cover (Wolsey 1982).

The submodular cover problem asks for the *smallest* set ``S`` with
``F(S) >= theta`` for a monotone submodular ``F``. Wolsey's greedy —
repeatedly add the item with the largest marginal gain until the target is
reached — uses at most ``(1 + ln(F_max / delta))`` times the optimal number
of items. Both BSM algorithms rely on it: Algorithm 1's first stage covers
``g'_tau`` to 1, and Algorithm 2 covers ``F'_alpha`` to ``2(1 - eps/c)``
inside each bisection step.

This module is a thin shim over :func:`repro.core.greedy.greedy_max`, so
it inherits the batched oracle fast path (one
:meth:`~repro.core.functions.GroupedObjective.gains_batch` call per
round) without any change in semantics.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.functions import GroupedObjective, ObjectiveState, Scalarizer
from repro.core.greedy import greedy_max
from repro.core.result import GreedyStep


def greedy_cover(
    objective: GroupedObjective,
    scalarizer: Scalarizer,
    target: float,
    *,
    budget: Optional[int] = None,
    state: Optional[ObjectiveState] = None,
    candidates: Optional[Iterable[int]] = None,
    lazy: bool = True,
    tolerance: float = 1e-9,
) -> tuple[ObjectiveState, list[GreedyStep], bool]:
    """Greedily add items until ``scalarizer`` reaches ``target``.

    Parameters
    ----------
    target:
        The cover threshold ``theta``.
    budget:
        Hard cap on added items (defaults to the whole ground set). The
        BSM algorithms pass ``k`` (practical mode) or ``k ln(c/eps)``
        (theoretical mode of Algorithm 2).
    tolerance:
        Treat values within ``tolerance`` of the target as covered; the
        truncated scalarizers saturate via floating-point sums, so an exact
        ``>=`` comparison would sporadically miss by one ulp.

    Returns
    -------
    (state, steps, covered):
        ``covered`` reports whether the target was reached within budget.
    """
    if budget is None:
        budget = objective.num_items
    state, steps = greedy_max(
        objective,
        scalarizer,
        budget,
        state=state,
        candidates=candidates,
        stop_value=target,
        lazy=lazy,
        tolerance=tolerance,
    )
    value = scalarizer.value(state.group_values, objective.group_weights)
    covered = value >= target - tolerance
    return state, steps, covered
