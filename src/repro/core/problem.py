"""High-level BSM problem façade.

:class:`BSMProblem` bundles a grouped objective with the instance
parameters ``(k, tau)`` and exposes every solver behind one method, which
is what the examples and the experiment harness use. Library users who
need fine-grained control (sub-routine reuse, custom candidates) can call
the solver functions directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.baselines import greedy_utility, stochastic_greedy_utility
from repro.core.bsm_saturate import bsm_saturate
from repro.core.functions import GroupedObjective
from repro.core.result import SolverResult
from repro.core.saturate import saturate
from repro.core.smsc import smsc
from repro.core.tsgreedy import bsm_tsgreedy
from repro.utils.validation import check_fraction, check_positive_int

#: Registry of solver names accepted by :meth:`BSMProblem.solve`; values
#: take (problem, **kwargs) and return a SolverResult.
_SOLVERS: dict[str, Callable[..., SolverResult]] = {}


def _register(name: str) -> Callable[[Callable[..., SolverResult]], Callable[..., SolverResult]]:
    def wrap(fn: Callable[..., SolverResult]) -> Callable[..., SolverResult]:
        _SOLVERS[name] = fn
        return fn

    return wrap


@dataclass
class BSMProblem:
    """A bicriteria submodular maximisation instance (Problem 1).

    Attributes
    ----------
    objective:
        The grouped utility oracle defining ``f``, ``f_i`` and ``g``.
    k:
        Cardinality constraint.
    tau:
        Balance factor in ``[0, 1]``.
    """

    objective: GroupedObjective
    k: int
    tau: float = 0.0

    def __post_init__(self) -> None:
        check_positive_int(self.k, "k")
        check_fraction(self.tau, "tau")
        if self.k > self.objective.num_items:
            raise ValueError(
                f"k={self.k} exceeds the ground-set size "
                f"{self.objective.num_items}"
            )

    # -- evaluation -------------------------------------------------------
    def evaluate(self, items: Iterable[int]) -> tuple[float, float]:
        """``(f(S), g(S))`` for an arbitrary solution ``S``."""
        values = self.objective.evaluate(items)
        f_val = float(self.objective.group_weights @ values)
        return f_val, float(values.min())

    # -- solvers ------------------------------------------------------------
    def solve(self, algorithm: str = "bsm-saturate", **kwargs: object) -> SolverResult:
        """Dispatch to a solver by name.

        Accepted names: ``greedy``, ``stochastic-greedy``, ``saturate``,
        ``smsc``, ``bsm-tsgreedy``, ``bsm-saturate``, ``bsm-optimal``
        (the latter only for objectives with an ILP formulation).
        """
        key = algorithm.lower()
        if key not in _SOLVERS:
            raise KeyError(
                f"unknown algorithm {algorithm!r}; expected one of "
                f"{sorted(_SOLVERS)}"
            )
        return _SOLVERS[key](self, **kwargs)

    def available_algorithms(self) -> list[str]:
        return sorted(_SOLVERS)


@_register("greedy")
def _solve_greedy(problem: BSMProblem, **kwargs: object) -> SolverResult:
    return greedy_utility(problem.objective, problem.k, **kwargs)  # type: ignore[arg-type]


@_register("stochastic-greedy")
def _solve_stochastic(problem: BSMProblem, **kwargs: object) -> SolverResult:
    return stochastic_greedy_utility(problem.objective, problem.k, **kwargs)  # type: ignore[arg-type]


@_register("saturate")
def _solve_saturate(problem: BSMProblem, **kwargs: object) -> SolverResult:
    return saturate(problem.objective, problem.k, **kwargs)  # type: ignore[arg-type]


@_register("mwu")
def _solve_mwu(problem: BSMProblem, **kwargs: object) -> SolverResult:
    from repro.core.mwu import mwu_robust

    return mwu_robust(problem.objective, problem.k, **kwargs)  # type: ignore[arg-type]


@_register("sieve-streaming")
def _solve_sieve(problem: BSMProblem, **kwargs: object) -> SolverResult:
    from repro.core.streaming import sieve_streaming

    return sieve_streaming(problem.objective, problem.k, **kwargs)  # type: ignore[arg-type]


@_register("smsc")
def _solve_smsc(problem: BSMProblem, **kwargs: object) -> SolverResult:
    return smsc(problem.objective, problem.k, **kwargs)  # type: ignore[arg-type]


@_register("bsm-tsgreedy")
def _solve_tsgreedy(problem: BSMProblem, **kwargs: object) -> SolverResult:
    return bsm_tsgreedy(problem.objective, problem.k, problem.tau, **kwargs)  # type: ignore[arg-type]


@_register("bsm-saturate")
def _solve_bsm_saturate(problem: BSMProblem, **kwargs: object) -> SolverResult:
    return bsm_saturate(problem.objective, problem.k, problem.tau, **kwargs)  # type: ignore[arg-type]


@_register("greedi")
def _solve_greedi(problem: BSMProblem, **kwargs: object) -> SolverResult:
    from repro.core.distributed import greedi

    return greedi(problem.objective, problem.k, **kwargs)  # type: ignore[arg-type]


@_register("sliding-window")
def _solve_sliding_window(problem: BSMProblem, **kwargs: object) -> SolverResult:
    from repro.core.sliding_window import sliding_window_utility

    window = kwargs.pop("window", problem.objective.num_items)
    return sliding_window_utility(problem.objective, problem.k, window, **kwargs)  # type: ignore[arg-type]


@_register("streaming-tsgreedy")
def _solve_streaming_tsgreedy(problem: BSMProblem, **kwargs: object) -> SolverResult:
    from repro.core.streaming_bsm import streaming_tsgreedy

    return streaming_tsgreedy(
        problem.objective, problem.k, problem.tau, **kwargs  # type: ignore[arg-type]
    )


@_register("bsm-saturate-ls")
def _solve_bsm_saturate_ls(problem: BSMProblem, **kwargs: object) -> SolverResult:
    """BSM-Saturate followed by swap local search on the weak floor."""
    from repro.core.local_search import polish
    from repro.core.saturate import saturate as _saturate

    max_sweeps = int(kwargs.pop("max_sweeps", 5))
    base = bsm_saturate(problem.objective, problem.k, problem.tau, **kwargs)  # type: ignore[arg-type]
    opt_g = base.extra.get("opt_g_approx")
    if opt_g is None:
        opt_g = _saturate(problem.objective, problem.k).fairness
    return polish(
        problem.objective,
        base,
        fairness_floor=problem.tau * float(opt_g),
        max_sweeps=max_sweeps,
    )


@_register("bsm-optimal")
def _solve_optimal(problem: BSMProblem, **kwargs: object) -> SolverResult:
    # Imported lazily: the ILP layer pulls in scipy.optimize, which the
    # greedy-only code paths never need.
    from repro.core.optimal import bsm_optimal

    return bsm_optimal(problem.objective, problem.k, problem.tau, **kwargs)  # type: ignore[arg-type]
