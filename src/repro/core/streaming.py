"""Sieve-Streaming for submodular maximisation [Badanidiyuru et al. 2014].

The related-work section cites streaming submodular maximisation as one
of the settings the greedy subroutine generalises to. This module
implements the classic single-pass Sieve-Streaming algorithm with a
``(1/2 - eps)`` guarantee: it maintains one candidate solution per
guessed optimum level ``v in {(1+eps)^j}`` and adds an arriving item to a
candidate whenever its marginal gain exceeds ``(v/2 - value) / (k - size)``.

Within this reproduction it serves two purposes:

* a drop-in utility-only solver for item streams too large to hold
  (``stream_greedy_utility``), and
* the substrate for the "streaming BSM" extension exercise: BSM-TSGreedy
  accepts any ``greedy_result``, so a streaming pass can replace the
  offline greedy sub-routine when items arrive online.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.core.functions import (
    AverageUtility,
    GroupedObjective,
    Scalarizer,
    fold_states,
)
from repro.core.result import SolverResult, make_result
from repro.utils.timing import Timer
from repro.utils.validation import check_fraction, check_positive_int


def sieve_streaming(
    objective: GroupedObjective,
    k: int,
    *,
    epsilon: float = 0.1,
    stream: Optional[Iterable[int]] = None,
    scalarizer: Optional[Scalarizer] = None,
) -> SolverResult:
    """One-pass Sieve-Streaming for ``max_{|S| <= k}`` of a scalarized
    grouped objective (default: the utility objective ``f``).

    Parameters
    ----------
    epsilon:
        Geometric grid resolution; the guarantee is ``1/2 - epsilon``.
    stream:
        Item arrival order (defaults to ``0..n-1``). Single pass: each
        item is examined once per active sieve level, and all levels are
        scored together with one
        :meth:`~repro.core.functions.GroupedObjective.gains_states` call
        per arrival (selections are identical to the per-level loop).

    Returns
    -------
    SolverResult
        ``extra['levels']`` reports how many sieve levels were kept,
        ``extra['max_singleton']`` the largest observed singleton value.
    """
    check_positive_int(k, "k")
    check_fraction(epsilon, "epsilon", inclusive_low=False, inclusive_high=False)
    scal = scalarizer or AverageUtility()
    weights = objective.group_weights
    items = list(range(objective.num_items)) if stream is None else [
        int(v) for v in stream
    ]
    timer = Timer()
    start_calls = objective.oracle_calls
    with timer:
        max_singleton = 0.0
        sieves: dict[int, "ObjectiveStateBox"] = {}
        # Persistent empty state for the singleton probes (gains is pure,
        # so one allocation serves the whole stream).
        empty = objective.new_state()
        for item in items:
            singleton_gain = scal.gain(
                empty.group_values, objective.gains(empty, item), weights
            )
            if singleton_gain > max_singleton:
                max_singleton = singleton_gain
                # Refresh the level grid: v must cover [m, 2km].
                sieves = _prune_levels(sieves, max_singleton, k, epsilon)
            if max_singleton <= 0:
                continue
            active_levels: list[int] = []
            active_states: list[ObjectiveState] = []
            for j in _level_indices(max_singleton, k, epsilon):
                box = sieves.get(j)
                if box is None:
                    box = ObjectiveStateBox(objective.new_state())
                    sieves[j] = box
                state = box.state
                if state.size >= k or state.in_solution[item]:
                    continue
                active_levels.append(j)
                active_states.append(state)
            if not active_states:
                continue
            # Sieve levels evolve independently, so one multi-state call
            # scores the arrival against every level that can still
            # absorb it (same levels — and call count — as the per-item
            # loop).
            values, gains_vec = fold_states(
                objective, scal, active_states, item
            )
            for pos, j in enumerate(active_levels):
                state = active_states[pos]
                v = (1.0 + epsilon) ** j
                threshold = (v / 2.0 - values[pos]) / (k - state.size)
                gain = float(gains_vec[pos])
                if gain >= threshold and gain > 0:
                    objective.add(state, item)
        best_state = objective.new_state()
        best_value = 0.0
        for box in sieves.values():
            value = scal.value(box.state.group_values, weights)
            if value > best_value:
                best_value = value
                best_state = box.state
    return make_result(
        "SieveStreaming",
        objective,
        best_state,
        runtime=timer.elapsed,
        oracle_calls=objective.oracle_calls - start_calls,
        extra={
            "epsilon": epsilon,
            "levels": len(sieves),
            "max_singleton": max_singleton,
        },
    )


class ObjectiveStateBox:
    """Named holder so sieve levels can be pruned without copying states."""

    __slots__ = ("state",)

    def __init__(self, state: "ObjectiveState") -> None:
        self.state = state


def _level_indices(max_singleton: float, k: int, epsilon: float) -> range:
    """Indices ``j`` with ``(1+eps)^j in [max_singleton, 2*k*max_singleton]``."""
    if max_singleton <= 0:
        return range(0)
    log_base = np.log1p(epsilon)
    low = int(np.floor(np.log(max_singleton) / log_base))
    high = int(np.ceil(np.log(2.0 * k * max_singleton) / log_base))
    return range(low, high + 1)


def _prune_levels(
    sieves: dict[int, ObjectiveStateBox],
    max_singleton: float,
    k: int,
    epsilon: float,
) -> dict[int, ObjectiveStateBox]:
    keep = set(_level_indices(max_singleton, k, epsilon))
    return {j: box for j, box in sieves.items() if j in keep}


# Imported for type hints only.
from repro.core.functions import ObjectiveState  # noqa: E402
