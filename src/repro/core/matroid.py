"""Matroid-constrained greedy and item-side fairness.

Two related-work threads of the paper meet here:

* greedy under a general **matroid constraint** keeps a ``1/2``
  guarantee for monotone submodular maximisation [Calinescu et al. 2011
  analyse the stronger continuous greedy; the discrete bound is Fisher/
  Nemhauser/Wolsey];
* the **item-side fairness** notion of [El Halabi et al. 2020; Wang et
  al. 2021] — lower/upper bounds on how many *items* of each category
  may be picked — is exactly optimisation over (the truncation of) a
  partition matroid.

The paper contrasts that notion with BSM's *user-side* fairness and
excludes it from the experiments ("the algorithms are not comparable");
implementing it here lets library users make the comparison anyway
(``benchmarks/bench_ablation_item_fairness.py``).
"""

from __future__ import annotations

import abc
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.functions import AverageUtility, GroupedObjective, Scalarizer
from repro.core.greedy import GAIN_EPS
from repro.core.result import SolverResult, make_result
from repro.utils.timing import Timer
from repro.utils.validation import check_positive_int


class Matroid(abc.ABC):
    """Independence oracle over ground set ``0..n-1``."""

    @abc.abstractmethod
    def can_add(self, selected: Sequence[int], item: int) -> bool:
        """Whether ``selected + [item]`` remains independent. ``selected``
        is always independent when the solver calls this."""

    def is_independent(self, items: Sequence[int]) -> bool:
        """Generic check built from :meth:`can_add` (quadratic; fine for
        validation and tests)."""
        acc: list[int] = []
        for item in items:
            if not self.can_add(acc, item):
                return False
            acc.append(item)
        return True


class UniformMatroid(Matroid):
    """All sets of size at most ``k`` — the cardinality constraint."""

    def __init__(self, k: int) -> None:
        self.k = check_positive_int(k, "k")

    def can_add(self, selected: Sequence[int], item: int) -> bool:
        return len(selected) < self.k


class PartitionMatroid(Matroid):
    """At most ``capacity[c]`` items from each item category ``c``.

    With per-category lower bounds handled separately (see
    :func:`fair_representation_greedy`), this encodes the item-side
    fairness constraint of the related work.
    """

    def __init__(
        self, categories: Sequence[int], capacities: Sequence[int]
    ) -> None:
        self.categories = np.asarray(categories, dtype=np.int64)
        if self.categories.ndim != 1 or self.categories.size == 0:
            raise ValueError("categories must be a non-empty 1-d sequence")
        if self.categories.min() < 0:
            raise ValueError("category labels must be non-negative")
        num_cats = int(self.categories.max()) + 1
        caps = np.asarray(capacities, dtype=np.int64)
        if caps.shape != (num_cats,):
            raise ValueError(
                f"capacities must have length {num_cats}, got {caps.shape}"
            )
        if np.any(caps < 0):
            raise ValueError("capacities must be non-negative")
        self.capacities = caps

    def can_add(self, selected: Sequence[int], item: int) -> bool:
        cat = int(self.categories[item])
        used = sum(1 for v in selected if int(self.categories[v]) == cat)
        return used < int(self.capacities[cat])


def matroid_greedy(
    objective: GroupedObjective,
    matroid: Matroid,
    *,
    scalarizer: Optional[Scalarizer] = None,
    candidates: Optional[Iterable[int]] = None,
    max_items: Optional[int] = None,
) -> SolverResult:
    """Greedy under a matroid constraint (``1/2`` guarantee).

    Each round adds the feasible item with the largest marginal gain;
    stops when no feasible item improves the objective.
    """
    scal = scalarizer or AverageUtility()
    weights = objective.group_weights
    pool = list(range(objective.num_items)) if candidates is None else [
        int(v) for v in candidates
    ]
    budget = max_items if max_items is not None else objective.num_items
    timer = Timer()
    start_calls = objective.oracle_calls
    with timer:
        state = objective.new_state()
        remaining = sorted(set(pool))
        for _ in range(budget):
            best_item, best_gain = -1, 0.0
            for item in remaining:
                if not matroid.can_add(state.selected, item):
                    continue
                gain = scal.gain(
                    state.group_values, objective.gains(state, item), weights
                )
                if gain > best_gain + GAIN_EPS:
                    best_item, best_gain = item, gain
            if best_item < 0:
                break
            objective.add(state, best_item)
            remaining.remove(best_item)
    return make_result(
        "MatroidGreedy",
        objective,
        state,
        runtime=timer.elapsed,
        oracle_calls=objective.oracle_calls - start_calls,
    )


def fair_representation_greedy(
    objective: GroupedObjective,
    k: int,
    item_categories: Sequence[int],
    *,
    lower_bounds: Optional[Sequence[int]] = None,
    upper_bounds: Optional[Sequence[int]] = None,
    scalarizer: Optional[Scalarizer] = None,
) -> SolverResult:
    """Item-side fairness baseline: pick ``k`` items with per-category
    lower/upper bounds on representation [El Halabi et al. 2020].

    Phase 1 satisfies the lower bounds (greedy within each deficient
    category); phase 2 fills the remaining slots greedily under the
    upper-bound partition matroid intersected with the size budget.

    Raises
    ------
    ValueError
        If the bounds are inconsistent with ``k`` (``sum lower > k`` or
        ``sum upper < k``) or malformed.
    """
    check_positive_int(k, "k")
    cats = np.asarray(item_categories, dtype=np.int64)
    if cats.shape != (objective.num_items,):
        raise ValueError(
            f"item_categories must have length {objective.num_items}"
        )
    num_cats = int(cats.max()) + 1
    lower = (
        np.zeros(num_cats, dtype=np.int64)
        if lower_bounds is None
        else np.asarray(lower_bounds, dtype=np.int64)
    )
    upper = (
        np.full(num_cats, k, dtype=np.int64)
        if upper_bounds is None
        else np.asarray(upper_bounds, dtype=np.int64)
    )
    if lower.shape != (num_cats,) or upper.shape != (num_cats,):
        raise ValueError(f"bounds must have length {num_cats}")
    if np.any(lower < 0) or np.any(upper < lower):
        raise ValueError("need 0 <= lower <= upper per category")
    if int(lower.sum()) > k:
        raise ValueError(f"sum of lower bounds {int(lower.sum())} exceeds k={k}")
    if int(np.minimum(upper, np.bincount(cats, minlength=num_cats)).sum()) < k:
        raise ValueError("upper bounds make a size-k solution impossible")
    scal = scalarizer or AverageUtility()
    weights = objective.group_weights
    timer = Timer()
    start_calls = objective.oracle_calls
    with timer:
        state = objective.new_state()
        # Phase 1: meet every lower bound, best-gain-first inside each
        # category (categories processed by descending deficit keeps the
        # behaviour deterministic).
        for cat in np.argsort(-lower):
            needed = int(lower[cat])
            members = [int(v) for v in np.flatnonzero(cats == cat)]
            while needed > 0:
                best_item, best_gain = -1, -1.0
                for item in members:
                    if state.in_solution[item]:
                        continue
                    gain = scal.gain(
                        state.group_values,
                        objective.gains(state, item),
                        weights,
                    )
                    if gain > best_gain:
                        best_item, best_gain = item, gain
                if best_item < 0:
                    raise ValueError(
                        f"category {int(cat)} has fewer items than its "
                        f"lower bound"
                    )
                objective.add(state, best_item)
                needed -= 1
        # Phase 2: fill to k under the upper-bound partition matroid.
        matroid = PartitionMatroid(cats, upper)
        while state.size < k:
            best_item, best_gain = -1, -1.0
            for item in range(objective.num_items):
                if state.in_solution[item]:
                    continue
                if not matroid.can_add(state.selected, item):
                    continue
                gain = scal.gain(
                    state.group_values, objective.gains(state, item), weights
                )
                if gain > best_gain:
                    best_item, best_gain = item, gain
            if best_item < 0:
                break
            objective.add(state, best_item)
    return make_result(
        "FairRepresentationGreedy",
        objective,
        state,
        runtime=timer.elapsed,
        oracle_calls=objective.oracle_calls - start_calls,
        extra={
            "lower_bounds": lower.tolist(),
            "upper_bounds": upper.tolist(),
        },
    )
