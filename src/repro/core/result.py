"""Solver result and trace containers.

Every public solver returns a :class:`SolverResult` carrying enough
information for the benchmark harness to reproduce the paper's plots
(``f(S)``, ``g(S)``, runtime) without re-evaluating anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np


@dataclass
class GreedyStep:
    """One accepted item in a greedy run (solution-path bookkeeping)."""

    item: int
    scalar_gain: float
    scalar_value: float


@dataclass
class SolverResult:
    """Outcome of one solver run on one BSM (or SM / RSM) instance.

    Attributes
    ----------
    algorithm:
        Human-readable solver name (matches the paper's legend labels).
    solution:
        Selected items, in selection order where meaningful.
    group_values:
        Vector ``(f_1(S), ..., f_c(S))``.
    utility:
        ``f(S)`` — the paper's utility objective.
    fairness:
        ``g(S) = min_i f_i(S)`` — the paper's fairness objective.
    oracle_calls:
        Number of marginal-gain oracle evaluations consumed.
    runtime:
        Wall-clock seconds.
    feasible:
        Whether the solver believes ``g(S) >= tau * OPT'_g`` (the "weak"
        constraint of Section 5; always ``True`` for unconstrained solvers).
    extra:
        Solver-specific diagnostics (e.g. ``alpha_min`` of BSM-Saturate,
        ``stage1_size`` of BSM-TSGreedy, ILP node counts).
    """

    algorithm: str
    solution: tuple[int, ...]
    group_values: np.ndarray
    utility: float
    fairness: float
    oracle_calls: int = 0
    runtime: float = 0.0
    feasible: bool = True
    steps: list[GreedyStep] = field(default_factory=list)
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.solution)

    def satisfies(self, threshold: float, *, atol: float = 1e-9) -> bool:
        """Whether ``g(S) >= threshold`` up to floating-point slack."""
        return self.fairness >= threshold - atol

    def summary(self) -> str:
        """One-line description used by examples and the harness logs."""
        items = ",".join(str(v) for v in self.solution[:8])
        if len(self.solution) > 8:
            items += ",..."
        return (
            f"{self.algorithm}: |S|={self.size} f(S)={self.utility:.4f} "
            f"g(S)={self.fairness:.4f} oracle_calls={self.oracle_calls} "
            f"time={self.runtime:.3f}s S=[{items}]"
        )


def make_result(
    algorithm: str,
    objective: "GroupedObjective",
    state: "ObjectiveState",
    *,
    runtime: float = 0.0,
    oracle_calls: Optional[int] = None,
    feasible: bool = True,
    steps: Optional[list[GreedyStep]] = None,
    extra: Optional[dict[str, Any]] = None,
) -> SolverResult:
    """Assemble a :class:`SolverResult` from a finished objective state."""
    return SolverResult(
        algorithm=algorithm,
        solution=state.solution,
        group_values=state.group_values.copy(),
        utility=objective.utility(state),
        fairness=objective.fairness(state),
        oracle_calls=objective.oracle_calls if oracle_calls is None else oracle_calls,
        runtime=runtime,
        feasible=feasible,
        steps=steps or [],
        extra=extra or {},
    )


# Imported late to avoid a cycle at type-checking time only.
from repro.core.functions import GroupedObjective, ObjectiveState  # noqa: E402
