"""Non-monotone submodular maximisation (the paper's stated future work).

The conclusion of the paper lists "generalize BSM to non-monotone ...
submodular functions" as future work. This module supplies the standard
toolbox for that direction so BSM-style pipelines can drop monotonicity:

* :func:`double_greedy` — the deterministic 1/3- and randomised
  1/2-approximation of Buchbinder et al. (2012) for *unconstrained*
  non-monotone submodular maximisation;
* :func:`random_greedy` — the cardinality-constrained random greedy of
  Buchbinder et al. (2014): ``1/e``-approximate for non-monotone
  functions and still ``(1 - 1/e)``-approximate (in expectation) for
  monotone ones;
* :class:`PenalizedObjective` — a ready-made non-monotone function
  ``f(S) - lambda * cost(S)`` combining a grouped monotone objective with
  a modular cost, the "submodular utility minus modular cost" shape of
  the related-work thread [Jin et al. 2021; Nikolakaki et al. 2021].

Unlike the rest of :mod:`repro.core`, these algorithms consume a plain
*set function* (``SetFunction``) rather than a :class:`GroupedObjective`:
non-monotone marginals can be negative, which the grouped incremental
machinery deliberately rejects. :func:`from_grouped` bridges the two
worlds.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.core.functions import AverageUtility, GroupedObjective, Scalarizer
from repro.core.result import SolverResult
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import Timer
from repro.utils.validation import check_positive_int

#: A plain set function ``2^V -> R``; not necessarily monotone.
SetFunction = Callable[[frozenset[int]], float]


class MemoizedSetFunction:
    """Wrap a :data:`SetFunction` with memoisation and call counting.

    Non-monotone algorithms probe the same sets repeatedly (e.g. double
    greedy evaluates both ``X + v`` and ``Y - v`` per item); memoisation
    keeps the oracle-call figures comparable with the lazy-forward
    numbers reported for the monotone solvers.
    """

    def __init__(self, fn: SetFunction) -> None:
        self._fn = fn
        self._cache: dict[frozenset[int], float] = {}
        self.calls = 0

    def __call__(self, items: frozenset[int]) -> float:
        key = frozenset(items)
        if key not in self._cache:
            self.calls += 1
            self._cache[key] = float(self._fn(key))
        return self._cache[key]


def from_grouped(
    objective: GroupedObjective,
    scalarizer: Optional[Scalarizer] = None,
) -> SetFunction:
    """A plain set function view of a grouped objective.

    Evaluation rebuilds the state from scratch, so this bridge targets
    the small-to-medium instances where non-monotone experiments run;
    wrap with :class:`MemoizedSetFunction` when an algorithm revisits
    sets.
    """
    scalar = scalarizer or AverageUtility()

    def fn(items: frozenset[int]) -> float:
        values = objective.evaluate(sorted(items))
        return scalar.value(values, objective.group_weights)

    return fn


class PenalizedObjective:
    """``h(S) = f(S) - penalty * sum_{v in S} cost_v`` — non-monotone.

    A submodular function minus a non-negative modular function is still
    submodular but generally not monotone: adding a costly item can
    *decrease* the value. This is the canonical way BSM instances become
    non-monotone in practice (facility construction costs, seeding
    incentives) and the shape studied by the related work on balancing
    submodularity and cost.
    """

    def __init__(
        self,
        objective: GroupedObjective,
        costs: Sequence[float],
        *,
        penalty: float = 1.0,
        scalarizer: Optional[Scalarizer] = None,
    ) -> None:
        cost_vec = np.asarray(costs, dtype=float)
        if cost_vec.shape != (objective.num_items,):
            raise ValueError(
                f"costs must have length {objective.num_items}, "
                f"got shape {cost_vec.shape}"
            )
        if np.any(cost_vec < 0):
            raise ValueError("costs must be non-negative")
        if penalty < 0:
            raise ValueError(f"penalty must be non-negative, got {penalty}")
        self._objective = objective
        self._costs = cost_vec
        self._penalty = float(penalty)
        self._scalar = scalarizer or AverageUtility()

    @property
    def costs(self) -> np.ndarray:
        return self._costs

    def __call__(self, items: frozenset[int]) -> float:
        values = self._objective.evaluate(sorted(items))
        base = self._scalar.value(values, self._objective.group_weights)
        return base - self._penalty * float(self._costs[list(items)].sum())


def double_greedy(
    fn: SetFunction,
    num_items: int,
    *,
    randomized: bool = True,
    seed: SeedLike = None,
) -> tuple[frozenset[int], float]:
    """Unconstrained non-monotone maximisation [Buchbinder et al. 2012].

    Grows ``X`` from the empty set and shrinks ``Y`` from the full ground
    set; for each item the marginal of adding to ``X`` competes with the
    marginal of removing from ``Y``. The randomised variant picks
    proportionally to the positive parts (1/2-approximation in
    expectation); the deterministic one takes the larger side (1/3).

    Returns the final set (``X == Y``) and its value.
    """
    check_positive_int(num_items, "num_items")
    rng = as_generator(seed)
    oracle = fn if isinstance(fn, MemoizedSetFunction) else MemoizedSetFunction(fn)
    x: set[int] = set()
    y: set[int] = set(range(num_items))
    for item in range(num_items):
        gain_add = oracle(frozenset(x | {item})) - oracle(frozenset(x))
        gain_del = oracle(frozenset(y - {item})) - oracle(frozenset(y))
        if randomized:
            a = max(gain_add, 0.0)
            b = max(gain_del, 0.0)
            if a + b <= 0.0:
                take = gain_add >= gain_del
            else:
                take = rng.random() < a / (a + b)
        else:
            take = gain_add >= gain_del
        if take:
            x.add(item)
        else:
            y.discard(item)
    solution = frozenset(x)
    return solution, oracle(solution)


def random_greedy(
    fn: SetFunction,
    num_items: int,
    budget: int,
    *,
    candidates: Optional[Iterable[int]] = None,
    seed: SeedLike = None,
) -> tuple[frozenset[int], float]:
    """Cardinality-constrained random greedy [Buchbinder et al. 2014].

    Each of the ``budget`` rounds ranks the remaining items by marginal
    gain, pads the top-``budget`` slate with dummy (no-op) slots when
    fewer than ``budget`` items have positive gain, and picks uniformly
    from the slate. For non-monotone submodular ``fn`` this is
    ``1/e``-approximate in expectation; for monotone ``fn`` it recovers
    ``1 - 1/e``.
    """
    check_positive_int(num_items, "num_items")
    check_positive_int(budget, "budget")
    rng = as_generator(seed)
    oracle = fn if isinstance(fn, MemoizedSetFunction) else MemoizedSetFunction(fn)
    pool = set(range(num_items) if candidates is None else candidates)
    for item in pool:
        if not 0 <= item < num_items:
            raise IndexError(f"candidate {item} out of range [0, {num_items})")
    solution: set[int] = set()
    for _ in range(budget):
        if not pool:
            break
        base = oracle(frozenset(solution))
        gains = sorted(
            ((oracle(frozenset(solution | {v})) - base, v) for v in pool),
            reverse=True,
        )
        slate = gains[:budget]
        # Dummy slots model "add nothing"; they keep the sampling
        # distribution of the analysis when < budget items help.
        num_dummies = budget - len(slate)
        pick = int(rng.integers(0, len(slate) + num_dummies))
        if pick >= len(slate):
            continue
        gain, item = slate[pick]
        if gain <= 0.0 and all(g <= 0.0 for g, _ in slate):
            # No item helps at all: stop early (optional for monotone
            # functions, essential for penalised ones).
            break
        solution.add(item)
        pool.discard(item)
    final = frozenset(solution)
    return final, oracle(final)


def penalized_random_greedy(
    objective: GroupedObjective,
    costs: Sequence[float],
    budget: int,
    *,
    penalty: float = 1.0,
    seed: SeedLike = None,
) -> SolverResult:
    """Random greedy on ``f(S) - penalty * cost(S)`` packaged as a result.

    The convenience entry point used by the examples and the ablation
    bench: build the penalised (non-monotone) view of a BSM utility
    objective, run :func:`random_greedy`, and report the *unpenalised*
    ``f``/``g`` values alongside the paid cost so the trade-off is
    visible.
    """
    penalized = PenalizedObjective(objective, costs, penalty=penalty)
    oracle = MemoizedSetFunction(penalized)
    with Timer() as timer:
        solution, value = random_greedy(
            oracle, objective.num_items, budget, seed=seed
        )
    group_values = objective.evaluate(sorted(solution))
    paid = float(np.asarray(costs, dtype=float)[sorted(solution)].sum())
    return SolverResult(
        algorithm="random-greedy",
        solution=tuple(sorted(solution)),
        group_values=group_values,
        utility=float(objective.group_weights @ group_values),
        fairness=float(group_values.min()) if group_values.size else 0.0,
        oracle_calls=oracle.calls,
        runtime=timer.elapsed,
        extra={"penalized_value": value, "cost": paid, "penalty": penalty},
    )
