"""Curvature of monotone submodular functions and curvature-aware bounds.

The companion diagnostic to :mod:`repro.core.weak`: where the
submodularity ratio measures how far a function is *below* submodular,
the (total) curvature of Conforti & Cornuéjols (1984)

    kappa = 1 - min_{v : f({v}) > 0}  [f(V) - f(V - v)] / f({v})

measures how strongly returns diminish. Greedy's guarantee sharpens from
``1 - 1/e`` to ``(1 - e^{-kappa}) / kappa`` as ``kappa`` drops — at
``kappa = 0`` (modular functions) greedy is exact. The paper's
instance-dependent factors inherit the same sharpening through their
greedy subroutines, which makes curvature a cheap per-instance
explanation of why measured gaps to BSM-Optimal (Figures 3/7) are far
smaller than the worst-case analysis suggests.

Everything here works on :class:`repro.core.functions.GroupedObjective`
instances directly. Exact curvature needs every "added-last" marginal
``f(V) - f(V - v)``, which costs ``O(n^2)`` incremental adds — fine for
the diagnostic sizes it is meant for (hundreds of items).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.functions import (
    AverageUtility,
    GroupedObjective,
    Scalarizer,
)
from repro.utils.validation import check_positive_int


def total_curvature(
    objective: GroupedObjective,
    *,
    scalarizer: Optional[Scalarizer] = None,
) -> float:
    """Exact total curvature of the scalarized objective.

    Computes ``f({v})`` for every item plus every added-last marginal
    ``f(V) - f(V - v)`` (prefix states shared across items, ``O(n^2)``
    adds overall — no subset enumeration). Returns a value in
    ``[0, 1]``; items with ``f({v}) = 0`` are skipped per the
    definition.
    """
    scal = scalarizer or AverageUtility()
    weights = objective.group_weights
    n = objective.num_items

    singles = np.zeros(n, dtype=float)
    empty = objective.new_state()
    for v in range(n):
        gains = objective.gains(empty, v)
        singles[v] = scal.gain(empty.group_values, gains, weights)

    # f(V) - f(V - v) = marginal of v on top of everything else; compute
    # by building V once per v would be O(n^2) adds. Instead build V - v
    # incrementally: prefix[i] has items < i, suffix[i] has items > i.
    prefix_states = [objective.new_state()]
    for v in range(n - 1):
        state = objective.copy_state(prefix_states[-1])
        objective.add(state, v)
        prefix_states.append(state)
    # For each v: start from prefix_states[v] (items 0..v-1), add items
    # v+1..n-1, then measure the gain of v.
    kappa_min = math.inf
    for v in range(n):
        if singles[v] <= 1e-12:
            continue
        state = objective.copy_state(prefix_states[v])
        for w in range(v + 1, n):
            objective.add(state, w)
        last_gain = scal.gain(
            state.group_values, objective.gains(state, v), weights
        )
        kappa_min = min(kappa_min, last_gain / singles[v])
    if kappa_min is math.inf:
        return 0.0  # identically-zero function: modular by convention
    return float(min(max(1.0 - kappa_min, 0.0), 1.0))


def curvature_greedy_bound(kappa: float) -> float:
    """Greedy factor ``(1 - e^{-kappa}) / kappa`` [Conforti–Cornuéjols].

    Continuous at 0: modular objectives (``kappa = 0``) give factor 1.
    """
    if not 0.0 <= kappa <= 1.0:
        raise ValueError(f"kappa must be in [0, 1], got {kappa}")
    if kappa < 1e-12:
        return 1.0
    return (1.0 - math.exp(-kappa)) / kappa


def empirical_greedy_ratio(
    objective: GroupedObjective,
    k: int,
    optimum: float,
    *,
    scalarizer: Optional[Scalarizer] = None,
) -> tuple[float, float]:
    """Measured greedy ratio next to its curvature prediction.

    Runs lazy greedy for ``k`` items and returns ``(measured, bound)``
    where ``measured = f(S_greedy) / optimum`` and ``bound`` is the
    curvature-sharpened guarantee. ``measured >= bound`` (up to float
    noise) on every valid instance — asserted by the property tests.
    """
    check_positive_int(k, "k")
    if optimum <= 0:
        raise ValueError(f"optimum must be positive, got {optimum}")
    from repro.core.greedy import greedy_max

    scal = scalarizer or AverageUtility()
    state, _ = greedy_max(objective, scal, k)
    measured = scal.value(state.group_values, objective.group_weights) / optimum
    kappa = total_curvature(objective, scalarizer=scal)
    return float(measured), curvature_greedy_bound(kappa)
