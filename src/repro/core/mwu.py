"""Multiplicative-weight-updates (MWU) solver for robust submodular
maximisation.

The paper's related-work section points to MWU algorithms for RSM
[Udwani 2018; Fu et al. 2021] that achieve constant factors when the
number of groups is small (``c = o(k / log^3 k)``). This module provides
that alternative to Saturate, both as a library feature and as an
ablation target (``benchmarks/bench_ablation_mwu.py``): it often trades a
slightly lower worst-group value for a much smaller constant-factor
runtime, since it runs plain greedy ``rounds`` times with no bisection.

Algorithm (standard MWU for max-min over ``c`` objectives):

1. keep a weight ``w_i`` per group, initially uniform;
2. each round, greedily maximise the weighted average
   ``sum_i w_i f_i(S)`` under the cardinality constraint;
3. multiply each ``w_i`` by ``exp(-eta * f_i(S_t) / scale)`` — groups that
   did badly gain weight and steer the next round;
4. return the round solution with the best *actual* ``min_i f_i``.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.core.functions import GroupedObjective, Scalarizer
from repro.core.greedy import greedy_max
from repro.core.result import SolverResult, make_result
from repro.utils.timing import Timer
from repro.utils.validation import check_positive_int

#: Default number of MWU rounds (theory wants O(log c / eta^2); in
#: practice a handful of rounds converges on the paper's instances).
DEFAULT_ROUNDS = 10


class _WeightedGroups(Scalarizer):
    """``sum_i w_i f_i(S)`` for an externally-updated weight vector."""

    def __init__(self, group_weights: np.ndarray) -> None:
        self.weights_vector = group_weights

    def value(self, group_values: np.ndarray, weights: np.ndarray) -> float:
        return float(self.weights_vector @ group_values)


def mwu_robust(
    objective: GroupedObjective,
    k: int,
    *,
    rounds: int = DEFAULT_ROUNDS,
    eta: float = 1.0,
    candidates: Optional[Iterable[int]] = None,
    lazy: bool = True,
) -> SolverResult:
    """Run MWU for ``max_{|S| <= k} min_i f_i(S)``.

    Parameters
    ----------
    rounds:
        Number of greedy rounds (each costs one full greedy run).
    eta:
        Learning rate of the exponential update. Larger values react
        faster to a starving group; ``1.0`` works across the paper's
        instances because group values are normalised fractions.

    Returns
    -------
    SolverResult
        ``extra['round_of_best']`` reports which round won;
        ``extra['final_weights']`` the terminal weight vector.
    """
    check_positive_int(k, "k")
    check_positive_int(rounds, "rounds")
    if eta <= 0:
        raise ValueError(f"eta must be positive, got {eta}")
    timer = Timer()
    start_calls = objective.oracle_calls
    with timer:
        c = objective.num_groups
        weights = np.full(c, 1.0 / c)
        best_state = None
        best_g = -np.inf
        best_round = -1
        # Scale normalises utilities so eta is dimensionless; groups with
        # zero ground-set utility contribute nothing either way.
        full = objective.max_group_values()
        scale = float(full.max()) if full.max() > 0 else 1.0
        for t in range(rounds):
            state, _ = greedy_max(
                objective,
                _WeightedGroups(weights),
                k,
                candidates=candidates,
                lazy=lazy,
            )
            g_val = objective.fairness(state)
            if g_val > best_g:
                best_g = g_val
                best_state = state
                best_round = t
            weights = weights * np.exp(-eta * state.group_values / scale)
            total = weights.sum()
            if total <= 0 or not np.isfinite(total):  # pragma: no cover
                weights = np.full(c, 1.0 / c)
            else:
                weights = weights / total
        assert best_state is not None
    return make_result(
        "MWU",
        objective,
        best_state,
        runtime=timer.elapsed,
        oracle_calls=objective.oracle_calls - start_calls,
        extra={
            "rounds": rounds,
            "eta": eta,
            "round_of_best": best_round,
            "final_weights": weights.tolist(),
        },
    )
