"""Feasibility-preserving swap local search for BSM solutions.

Neither paper algorithm revisits its choices: BSM-TSGreedy commits to the
cover-stage items, BSM-Saturate to whatever its final bisection round
greedily picked. A classic post-optimisation is *pairwise exchange*
local search — repeatedly swap one selected item for one outside item
whenever the swap raises ``f(S)`` without dropping ``g(S)`` below the
(weak) fairness floor ``tau * OPT'_g``. Each accepted swap strictly
improves the primary objective over a finite lattice, so the search
terminates; the result dominates its starting point by construction.

This is the "problem-specific analyses ... further improve the
approximation factors" direction of the paper's future work turned into
a concrete, instance-level improver, and the subject of
``benchmarks/bench_ablation_localsearch.py``.

Complexity: one sweep evaluates ``O(k * n)`` candidate swaps, each
costing ``O(k)`` oracle calls to rebuild the state (the grouped oracles
are add-only by design — deletion support would complicate every
substrate for the benefit of this one module). Intended for the
``n <= ~10^4`` instances where polish matters; the sweep budget is
capped by ``max_sweeps``.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.functions import GroupedObjective, ObjectiveState
from repro.core.result import SolverResult, make_result
from repro.utils.timing import Timer
from repro.utils.validation import check_non_negative, check_positive_int

#: Minimum relative improvement for a swap to be accepted; guards
#: against cycling on floating-point noise.
IMPROVEMENT_RTOL = 1e-9


def _rebuild(
    objective: GroupedObjective, items: Iterable[int]
) -> ObjectiveState:
    state = objective.new_state()
    for item in items:
        objective.add(state, item)
    return state


def swap_local_search(
    objective: GroupedObjective,
    solution: Iterable[int],
    *,
    fairness_floor: float = 0.0,
    candidates: Optional[Iterable[int]] = None,
    max_sweeps: int = 10,
) -> tuple[ObjectiveState, int]:
    """Improve ``f(S)`` by single-item swaps, keeping ``g(S) >= floor``.

    Parameters
    ----------
    solution:
        Starting items (typically a BSM solver's output).
    fairness_floor:
        The constraint level to preserve, usually ``tau * OPT'_g``. The
        starting solution itself need not satisfy it — swaps then also
        accept fairness repairs (raising ``g`` to/above the floor) even
        at zero utility gain, preferring feasibility first.
    candidates:
        Outside pool to swap in (defaults to the full ground set).
    max_sweeps:
        Upper bound on full passes; each pass applies the best accepted
        swap per position (first-improvement within a position,
        best-improvement across positions).

    Returns
    -------
    (state, swaps):
        Final state and the number of accepted swaps.
    """
    check_non_negative(fairness_floor, "fairness_floor")
    check_positive_int(max_sweeps, "max_sweeps")
    pool = sorted(
        set(range(objective.num_items) if candidates is None else candidates)
    )
    current = sorted(set(solution))
    state = _rebuild(objective, current)
    weights = objective.group_weights
    swaps = 0
    for _ in range(max_sweeps):
        utility = float(weights @ state.group_values)
        fairness = float(state.group_values.min())
        feasible = fairness >= fairness_floor - 1e-12
        best_swap: Optional[tuple[list[int], ObjectiveState, float, float]]
        best_swap = None
        for out_item in list(current):
            kept = [v for v in current if v != out_item]
            for in_item in pool:
                if in_item in current:
                    continue
                trial_items = kept + [in_item]
                trial = _rebuild(objective, trial_items)
                trial_utility = float(weights @ trial.group_values)
                trial_fairness = float(trial.group_values.min())
                if feasible:
                    # Preserve feasibility, require a real utility gain.
                    if trial_fairness < fairness_floor - 1e-12:
                        continue
                    if trial_utility <= utility * (1.0 + IMPROVEMENT_RTOL):
                        continue
                    score = trial_utility
                else:
                    # Repair mode: first close the fairness gap.
                    if trial_fairness <= fairness + 1e-12:
                        continue
                    score = trial_fairness
                if best_swap is None or score > best_swap[2]:
                    best_swap = (trial_items, trial, score, trial_utility)
        if best_swap is None:
            break
        current = sorted(best_swap[0])
        state = best_swap[1]
        swaps += 1
    return state, swaps


def polish(
    objective: GroupedObjective,
    result: SolverResult,
    *,
    fairness_floor: float = 0.0,
    max_sweeps: int = 10,
) -> SolverResult:
    """Post-optimise a solver result; never returns a worse solution.

    Wraps :func:`swap_local_search` and keeps the original result when
    no swap is accepted (so pipelines can call it unconditionally). The
    returned result's ``extra`` records the origin algorithm, accepted
    swap count, and the utility delta.
    """
    timer = Timer()
    start_calls = objective.oracle_calls
    with timer:
        state, swaps = swap_local_search(
            objective,
            result.solution,
            fairness_floor=fairness_floor,
            max_sweeps=max_sweeps,
        )
    if swaps == 0:
        return result
    polished = make_result(
        f"{result.algorithm}+LS",
        objective,
        state,
        runtime=result.runtime + timer.elapsed,
        oracle_calls=result.oracle_calls
        + (objective.oracle_calls - start_calls),
        feasible=float(state.group_values.min()) >= fairness_floor - 1e-12,
        extra={
            **result.extra,
            "origin": result.algorithm,
            "swaps": swaps,
            "utility_delta": float(
                objective.group_weights @ state.group_values
            )
            - result.utility,
        },
    )
    return polished
