"""BSM-Optimal — exact solutions of small MC / FL instances via ILP.

Reproduces the paper's Appendix-A pipeline: first solve the *robust* ILP
to obtain the exact ``OPT_g``, then solve the BSM ILP whose per-group
constraints enforce ``f_i(S) >= tau * OPT_g``. Influence maximization is
rejected (its objective is #P-hard to evaluate, hence no ILP — matching
the paper, which omits BSM-Optimal from all IM experiments).
"""

from __future__ import annotations

from typing import Optional

from repro.core.functions import GroupedObjective
from repro.core.result import SolverResult
from repro.errors import InfeasibleError, SolverError
from repro.ilp.branch_and_bound import solve_milp
from repro.ilp.formulations import (
    bsm_coverage_ilp,
    bsm_facility_ilp,
    coverage_ilp,
    facility_ilp,
    robust_coverage_ilp,
    robust_facility_ilp,
)
from repro.problems.coverage import CoverageObjective
from repro.problems.facility import FacilityLocationObjective
from repro.utils.timing import Timer
from repro.utils.validation import check_fraction, check_positive_int

#: Guard: BSM-Optimal is exponential-time; refuse instances that would hang.
DEFAULT_MAX_ITEMS = 600


def bsm_optimal(
    objective: GroupedObjective,
    k: int,
    tau: float,
    *,
    backend: str = "scipy",
    max_items: int = DEFAULT_MAX_ITEMS,
    opt_g: Optional[float] = None,
    opt_f: Optional[float] = None,
) -> SolverResult:
    """Exact BSM solution for coverage / facility-location objectives.

    Parameters
    ----------
    backend:
        MILP backend: ``"scipy"`` (HiGHS MIP; default — the robust FL
        ILPs are branch-heavy) or ``"branch-and-bound"`` (our solver,
        cross-validated in the tests and the ILP ablation bench).
    max_items:
        Safety cap on ``n`` (exact solving is exponential in the worst
        case; the paper only runs BSM-Optimal on small instances).
    opt_g, opt_f:
        Optional precomputed exact optima. The robust ILP (``opt_g``) is
        by far the most expensive solve, and it depends only on
        ``(dataset, k)``, so the harness computes it once per ``tau``
        sweep and passes it in.

    Returns
    -------
    SolverResult
        ``extra`` records ``opt_g`` (exact robust optimum), ``opt_f``
        (exact unconstrained optimum, for the figures' OPT_f line), node
        counts, and the backend.
    """
    check_positive_int(k, "k")
    check_fraction(tau, "tau")
    if objective.num_items > max_items:
        raise SolverError(
            f"BSM-Optimal limited to n <= {max_items} items (got "
            f"{objective.num_items}); raise max_items explicitly to override"
        )
    if isinstance(objective, CoverageObjective):
        robust_builder = robust_coverage_ilp
        bsm_builder = bsm_coverage_ilp
        plain_builder = coverage_ilp
    elif isinstance(objective, FacilityLocationObjective):
        robust_builder = robust_facility_ilp
        bsm_builder = bsm_facility_ilp
        plain_builder = facility_ilp
    else:
        # Summarization is facility location in disguise (identical item
        # indexing); solve its ILP on the converted view.
        from repro.problems.summarization import SummarizationObjective

        if isinstance(objective, SummarizationObjective):
            return bsm_optimal(
                objective.as_facility(),
                k,
                tau,
                backend=backend,
                max_items=max_items,
                opt_g=opt_g,
                opt_f=opt_f,
            )
        raise SolverError(
            "BSM-Optimal requires a CoverageObjective, "
            "FacilityLocationObjective or SummarizationObjective, got "
            f"{type(objective).__name__} (influence maximization has no "
            "ILP formulation; see Appendix A)"
        )
    timer = Timer()
    nodes = 0
    with timer:
        if opt_g is None:
            robust_model, _ = robust_builder(objective, k)
            robust_sol = solve_milp(robust_model, backend=backend)
            opt_g = robust_sol.objective
            nodes += robust_sol.nodes
        if tau == 0.0 or opt_f is None:
            plain_model, _ = plain_builder(objective, k)
            plain_sol = solve_milp(plain_model, backend=backend)
            opt_f = plain_sol.objective
            nodes += plain_sol.nodes
        if tau == 0.0:
            bsm_sol, x_vars = plain_sol, plain_model.variables[: objective.num_items]
        else:
            bsm_model, x_vars = bsm_builder(objective, k, tau, opt_g)
            try:
                bsm_sol = solve_milp(bsm_model, backend=backend)
            except InfeasibleError:
                # Shrinking float thresholds can make an exactly-feasible
                # instance marginally infeasible; retry with a hair of slack
                # before giving up (the robust solution itself must satisfy
                # f_i >= OPT_g >= tau*OPT_g).
                bsm_model, x_vars = bsm_builder(
                    objective, k, tau * (1.0 - 1e-9), opt_g
                )
                bsm_sol = solve_milp(bsm_model, backend=backend)
        nodes += bsm_sol.nodes
        solution = tuple(
            int(var.index)
            for var in x_vars
            if bsm_sol.x[var.index] > 0.5
        )
        group_values = objective.evaluate(solution)
    utility = float(objective.group_weights @ group_values)
    fairness = float(group_values.min())
    return SolverResult(
        algorithm="BSM-Optimal",
        solution=solution,
        group_values=group_values,
        utility=utility,
        fairness=fairness,
        oracle_calls=0,
        runtime=timer.elapsed,
        feasible=fairness >= tau * opt_g - 1e-9,
        extra={
            "opt_g": opt_g,
            "opt_f": opt_f,
            "nodes": nodes,
            "backend": backend,
            "ilp_objective": bsm_sol.objective,
        },
    )
