"""Two-round distributed greedy (GreeDi) [Mirzasoleiman et al. 2016].

The related-work section lists the distributed setting among those the
greedy subroutine generalises to. GreeDi is the standard two-round
scheme:

1. partition the ground set across ``num_machines`` workers;
2. each worker greedily solves its shard for a size-``k`` solution;
3. a reducer greedily re-solves on the union of the shard solutions;
4. return the best of the reducer solution and every shard solution.

For monotone submodular objectives the result is
``(1 - 1/e)^2 / min(sqrt(k), num_machines)``-approximate in the
adversarial-partition worst case and near-greedy in practice with random
partitions. Shard solves run as genuinely independent workers when
``workers > 1``: each machine's greedy executes against its own copy of
the objective on the persistent worker pool
(:func:`repro.utils.parallel.parallel_map`; ``exec_backend`` picks
thread/process/serial), falling back to an in-process loop whenever
:func:`repro.utils.parallel.pool_width` resolves to 1. Shard greedy is
deterministic, so serial and parallel execution return bitwise-identical
solutions, and oracle-call counts faithfully reflect per-machine work
via ``extra['machine_calls']`` either way (worker call deltas are folded
back into the parent's counters). ``extra['workers_used']`` records how
many pool workers actually ran.

BSM hook: :func:`distributed_tsgreedy_stage2` lets BSM-TSGreedy swap its
offline utility-greedy subroutine for a distributed one, which is the
natural recipe when the item universe does not fit one machine.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.functions import (
    AverageUtility,
    GroupedObjective,
    ObjectiveState,
    Scalarizer,
)
from repro.core.greedy import greedy_max
from repro.core.result import SolverResult, make_result
from repro.utils.parallel import WorkerContext, parallel_map, pool_width
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import Timer
from repro.utils.validation import check_positive_int


def partition_items(
    num_items: int,
    num_machines: int,
    *,
    seed: SeedLike = None,
) -> list[np.ndarray]:
    """Random balanced partition of ``0..n-1`` into ``num_machines`` shards.

    Random assignment is the partition GreeDi's average-case analysis
    assumes; shards differ in size by at most one.
    """
    check_positive_int(num_items, "num_items")
    check_positive_int(num_machines, "num_machines")
    if num_machines > num_items:
        raise ValueError(
            f"cannot split {num_items} items across {num_machines} machines"
        )
    rng = as_generator(seed)
    order = rng.permutation(num_items)
    return [np.sort(shard) for shard in np.array_split(order, num_machines)]


def _shard_solve(
    ctx: WorkerContext, shard: np.ndarray
) -> tuple[ObjectiveState, int, int]:
    """Worker: one machine's greedy solve on its shard.

    Runs on the worker's own copy of the objective (delivered once per
    process via the pool payload); returns the selected state plus the
    oracle/batch-call deltas so the parent can fold the work back into
    its own counters.
    """
    objective, scal, k, lazy = ctx.payload
    before = objective.oracle_calls
    before_batch = objective.batch_oracle_calls
    state, _ = greedy_max(
        objective, scal, k, candidates=shard.tolist(), lazy=lazy
    )
    return (
        state,
        objective.oracle_calls - before,
        objective.batch_oracle_calls - before_batch,
    )


def greedi(
    objective: GroupedObjective,
    k: int,
    *,
    num_machines: int = 4,
    scalarizer: Optional[Scalarizer] = None,
    shards: Optional[Sequence[Sequence[int]]] = None,
    seed: SeedLike = None,
    lazy: bool = True,
    workers: Optional[int] = None,
    exec_backend: Optional[str] = None,
) -> SolverResult:
    """Run the two-round GreeDi scheme on a grouped objective.

    Parameters
    ----------
    num_machines:
        Number of logical workers (ignored when ``shards`` is given).
    shards:
        Explicit ground-set partition, for callers that control data
        placement; must cover disjoint item subsets.
    scalarizer:
        Scalar view to maximise (defaults to the utility objective
        ``f``; pass a truncated surrogate to distribute a cover stage).
    workers:
        Pool workers to spread the shard solves over (capped at the
        shard count). ``None``/``0``/``1`` solve shards in-process;
        solutions are bitwise-identical either way because shard greedy
        is deterministic.
    exec_backend:
        Pool flavour for the shard solves — ``"thread"`` (default),
        ``"process"``, or ``"serial"``; see
        :mod:`repro.utils.parallel`.

    Returns
    -------
    SolverResult
        ``extra`` carries ``machine_calls`` (per-shard oracle work),
        ``merge_calls``, ``winner`` ("merge" or ``"machine:<i>"``), and
        ``workers_used`` (processes that actually ran the shards).
    """
    check_positive_int(k, "k")
    scal = scalarizer or AverageUtility()
    if shards is None:
        parts = partition_items(
            objective.num_items, num_machines, seed=seed
        )
    else:
        parts = [np.asarray(sorted(s), dtype=np.int64) for s in shards]
        flat = np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
        if flat.size != np.unique(flat).size:
            raise ValueError("shards must be disjoint")
    weights = objective.group_weights
    # pool_width is parallel_map's own fallback rule: the counter
    # fold-back below must know whether the shards ran on copies (pool)
    # or on this very objective (in-process loop, which advances the
    # counters itself).
    workers_used = pool_width(workers, len(parts), backend=exec_backend)
    timer = Timer()
    start_calls = objective.oracle_calls
    with timer:
        # Each shard solve (and the merge below) scores its candidate
        # pool through the batched greedy loops — one gains_batch call
        # per round rather than one oracle round-trip per candidate.
        # With workers > 1 the shards run in separate processes against
        # per-worker objective copies; the call deltas are folded back
        # into this objective so accounting matches the in-process loop.
        shard_results = parallel_map(
            _shard_solve,
            parts,
            workers=workers_used,
            payload=(objective, scal, k, lazy),
            backend=exec_backend,
        )
        machine_states: list[ObjectiveState] = []
        machine_calls: list[int] = []
        for state, calls_delta, batch_delta in shard_results:
            machine_states.append(state)
            machine_calls.append(calls_delta)
            if workers_used > 1:
                objective.oracle_calls += calls_delta
                objective.batch_oracle_calls += batch_delta
        union = sorted(
            {item for state in machine_states for item in state.selected}
        )
        before = objective.oracle_calls
        merged, _ = greedy_max(objective, scal, k, candidates=union, lazy=lazy)
        merge_calls = objective.oracle_calls - before

        # Fold every contender's group values in one multi-state pass;
        # the strict-improvement scan keeps the original tie-breaking
        # (merge wins ties, then the lowest machine index).
        contenders = [merged] + machine_states
        values = scal.value_batch(
            np.stack([s.group_values for s in contenders]), weights
        )
        best_state = merged
        winner = "merge"
        best_value = float(values[0])
        for index, state in enumerate(machine_states):
            value = float(values[index + 1])
            if value > best_value:
                best_value = value
                best_state = state
                winner = f"machine:{index}"
    return make_result(
        "GreeDi",
        objective,
        best_state,
        runtime=timer.elapsed,
        oracle_calls=objective.oracle_calls - start_calls,
        extra={
            "num_machines": len(parts),
            "machine_calls": machine_calls,
            "merge_calls": merge_calls,
            "winner": winner,
            "workers_used": workers_used,
        },
    )


def distributed_tsgreedy_stage2(
    objective: GroupedObjective,
    k: int,
    stage1_state: ObjectiveState,
    *,
    num_machines: int = 4,
    seed: SeedLike = None,
    workers: Optional[int] = None,
    exec_backend: Optional[str] = None,
) -> ObjectiveState:
    """Fill a partial BSM-TSGreedy solution using GreeDi item order.

    Stage 2 of Algorithm 1 appends items from the utility-greedy solution
    ``S_f``; here ``S_f`` is produced by :func:`greedi` instead, so the
    whole pipeline runs when no single machine can sweep the full ground
    set. The fill preserves the stage-1 items (hence the fairness cover)
    and only tops up to size ``k``.
    """
    check_positive_int(k, "k")
    remaining = k - stage1_state.size
    if remaining <= 0:
        return stage1_state
    flat = greedi(
        objective,
        k,
        num_machines=num_machines,
        seed=seed,
        workers=workers,
        exec_backend=exec_backend,
    )
    state = objective.copy_state(stage1_state)
    for item in flat.solution:
        if state.size >= k:
            break
        if not state.in_solution[item]:
            objective.add(state, item)
    return state
