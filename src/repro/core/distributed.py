"""Two-round distributed greedy (GreeDi) [Mirzasoleiman et al. 2016].

The related-work section lists the distributed setting among those the
greedy subroutine generalises to. GreeDi is the standard two-round
scheme:

1. partition the ground set across ``num_machines`` workers;
2. each worker greedily solves its shard for a size-``k`` solution;
3. a reducer greedily re-solves on the union of the shard solutions;
4. return the best of the reducer solution and every shard solution.

For monotone submodular objectives the result is
``(1 - 1/e)^2 / min(sqrt(k), num_machines)``-approximate in the
adversarial-partition worst case and near-greedy in practice with random
partitions. Workers here are simulated sequentially (the point of the
module is the *algorithmic* substrate — shard-local greedy + merge — not
wall-clock parallelism), so oracle-call counts faithfully reflect
per-machine work via ``extra['machine_calls']``.

BSM hook: :func:`distributed_tsgreedy_stage2` lets BSM-TSGreedy swap its
offline utility-greedy subroutine for a distributed one, which is the
natural recipe when the item universe does not fit one machine.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.functions import (
    AverageUtility,
    GroupedObjective,
    ObjectiveState,
    Scalarizer,
)
from repro.core.greedy import greedy_max
from repro.core.result import SolverResult, make_result
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import Timer
from repro.utils.validation import check_positive_int


def partition_items(
    num_items: int,
    num_machines: int,
    *,
    seed: SeedLike = None,
) -> list[np.ndarray]:
    """Random balanced partition of ``0..n-1`` into ``num_machines`` shards.

    Random assignment is the partition GreeDi's average-case analysis
    assumes; shards differ in size by at most one.
    """
    check_positive_int(num_items, "num_items")
    check_positive_int(num_machines, "num_machines")
    if num_machines > num_items:
        raise ValueError(
            f"cannot split {num_items} items across {num_machines} machines"
        )
    rng = as_generator(seed)
    order = rng.permutation(num_items)
    return [np.sort(shard) for shard in np.array_split(order, num_machines)]


def greedi(
    objective: GroupedObjective,
    k: int,
    *,
    num_machines: int = 4,
    scalarizer: Optional[Scalarizer] = None,
    shards: Optional[Sequence[Sequence[int]]] = None,
    seed: SeedLike = None,
    lazy: bool = True,
) -> SolverResult:
    """Run the two-round GreeDi scheme on a grouped objective.

    Parameters
    ----------
    num_machines:
        Number of simulated workers (ignored when ``shards`` is given).
    shards:
        Explicit ground-set partition, for callers that control data
        placement; must cover disjoint item subsets.
    scalarizer:
        Scalar view to maximise (defaults to the utility objective
        ``f``; pass a truncated surrogate to distribute a cover stage).

    Returns
    -------
    SolverResult
        ``extra`` carries ``machine_calls`` (per-shard oracle work),
        ``merge_calls``, and ``winner`` ("merge" or ``"machine:<i>"``).
    """
    check_positive_int(k, "k")
    scal = scalarizer or AverageUtility()
    if shards is None:
        parts = partition_items(
            objective.num_items, num_machines, seed=seed
        )
    else:
        parts = [np.asarray(sorted(s), dtype=np.int64) for s in shards]
        flat = np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
        if flat.size != np.unique(flat).size:
            raise ValueError("shards must be disjoint")
    weights = objective.group_weights
    timer = Timer()
    start_calls = objective.oracle_calls
    with timer:
        machine_states: list[ObjectiveState] = []
        machine_calls: list[int] = []
        # Each shard solve (and the merge below) scores its candidate
        # pool through the batched greedy loops — one gains_batch call
        # per round rather than one oracle round-trip per candidate.
        for shard in parts:
            before = objective.oracle_calls
            state, _ = greedy_max(
                objective, scal, k, candidates=shard.tolist(), lazy=lazy
            )
            machine_calls.append(objective.oracle_calls - before)
            machine_states.append(state)
        union = sorted(
            {item for state in machine_states for item in state.selected}
        )
        before = objective.oracle_calls
        merged, _ = greedy_max(objective, scal, k, candidates=union, lazy=lazy)
        merge_calls = objective.oracle_calls - before

        # Fold every contender's group values in one multi-state pass;
        # the strict-improvement scan keeps the original tie-breaking
        # (merge wins ties, then the lowest machine index).
        contenders = [merged] + machine_states
        values = scal.value_batch(
            np.stack([s.group_values for s in contenders]), weights
        )
        best_state = merged
        winner = "merge"
        best_value = float(values[0])
        for index, state in enumerate(machine_states):
            value = float(values[index + 1])
            if value > best_value:
                best_value = value
                best_state = state
                winner = f"machine:{index}"
    return make_result(
        "GreeDi",
        objective,
        best_state,
        runtime=timer.elapsed,
        oracle_calls=objective.oracle_calls - start_calls,
        extra={
            "num_machines": len(parts),
            "machine_calls": machine_calls,
            "merge_calls": merge_calls,
            "winner": winner,
        },
    )


def distributed_tsgreedy_stage2(
    objective: GroupedObjective,
    k: int,
    stage1_state: ObjectiveState,
    *,
    num_machines: int = 4,
    seed: SeedLike = None,
) -> ObjectiveState:
    """Fill a partial BSM-TSGreedy solution using GreeDi item order.

    Stage 2 of Algorithm 1 appends items from the utility-greedy solution
    ``S_f``; here ``S_f`` is produced by :func:`greedi` instead, so the
    whole pipeline runs when no single machine can sweep the full ground
    set. The fill preserves the stage-1 items (hence the fairness cover)
    and only tops up to size ``k``.
    """
    check_positive_int(k, "k")
    remaining = k - stage1_state.size
    if remaining <= 0:
        return stage1_state
    flat = greedi(
        objective, k, num_machines=num_machines, seed=seed
    )
    state = objective.copy_state(stage1_state)
    for item in flat.solution:
        if state.size >= k:
            break
        if not state.in_solution[item]:
            objective.add(state, item)
    return state
