"""Core algorithms: the paper's contribution plus its direct baselines."""

from repro.core.baselines import greedy_utility, stochastic_greedy_utility
from repro.core.bsm_saturate import bsm_saturate
from repro.core.cover import greedy_cover
from repro.core.curvature import (
    curvature_greedy_bound,
    empirical_greedy_ratio,
    total_curvature,
)
from repro.core.distributed import greedi, partition_items
from repro.core.dynamic import DynamicMaximizer
from repro.core.local_search import polish, swap_local_search
from repro.core.nonmonotone import (
    MemoizedSetFunction,
    PenalizedObjective,
    double_greedy,
    penalized_random_greedy,
    random_greedy,
)
from repro.core.sliding_window import (
    SlidingWindowMaximizer,
    sliding_window_utility,
)
from repro.core.weak import (
    greedy_guarantee,
    is_monotone,
    is_submodular,
    sampled_submodularity_ratio,
    submodularity_ratio,
    weak_greedy,
)
from repro.core.functions import (
    AverageUtility,
    BSMCombined,
    GroupedObjective,
    MinUtility,
    ObjectiveState,
    PerUserObjective,
    Scalarizer,
    TruncatedFairness,
    WeightedCombination,
)
from repro.core.greedy import (
    greedy_max,
    stochastic_greedy_max,
    threshold_greedy_max,
)
from repro.core.mwu import mwu_robust
from repro.core.problem import BSMProblem
from repro.core.streaming import sieve_streaming
from repro.core.streaming_bsm import reservoir_sample, streaming_tsgreedy
from repro.core.result import GreedyStep, SolverResult
from repro.core.saturate import saturate
from repro.core.smsc import smsc
from repro.core.tsgreedy import bsm_tsgreedy

__all__ = [
    "AverageUtility",
    "BSMCombined",
    "BSMProblem",
    "GreedyStep",
    "DynamicMaximizer",
    "GroupedObjective",
    "MemoizedSetFunction",
    "MinUtility",
    "ObjectiveState",
    "PenalizedObjective",
    "PerUserObjective",
    "Scalarizer",
    "SlidingWindowMaximizer",
    "SolverResult",
    "TruncatedFairness",
    "WeightedCombination",
    "bsm_saturate",
    "bsm_tsgreedy",
    "curvature_greedy_bound",
    "double_greedy",
    "empirical_greedy_ratio",
    "greedi",
    "greedy_cover",
    "greedy_guarantee",
    "greedy_max",
    "greedy_utility",
    "is_monotone",
    "is_submodular",
    "mwu_robust",
    "partition_items",
    "penalized_random_greedy",
    "polish",
    "random_greedy",
    "reservoir_sample",
    "sampled_submodularity_ratio",
    "saturate",
    "sieve_streaming",
    "streaming_tsgreedy",
    "sliding_window_utility",
    "smsc",
    "stochastic_greedy_max",
    "stochastic_greedy_utility",
    "submodularity_ratio",
    "swap_local_search",
    "threshold_greedy_max",
    "total_curvature",
    "weak_greedy",
]
