"""Sliding-window submodular maximisation over item streams.

The related-work section cites the sliding-window model [Epasto et al.
2017; Wang et al. 2017/2019]: maintain, at every point of an item
stream, a good size-``k`` solution over only the ``window`` most recent
items. This module implements the checkpoint scheme those papers build
on:

* keep several :func:`repro.core.streaming.sieve_streaming`-style
  sub-instances ("checkpoints"), each started at a different stream
  offset, so at any time at least one checkpoint covers exactly the
  items that are still alive;
* retire checkpoints whose start has aged out of the window; thin the
  rest to a geometric start grid (ages ``1, s, s^2, ...``), which
  bounds the number of simultaneously live checkpoints by
  ``O(log window)`` at a constant-factor cost in the guarantee.

Each arrival is scored against *all* live checkpoints with a single
:meth:`~repro.core.functions.GroupedObjective.gains_states` call, so
per-arrival cost is one vectorized oracle pass instead of
``O(log window)`` Python round-trips.

The maximiser tracks the *utility* objective by default but accepts any
scalarizer, so a fairness surrogate can be monitored over a stream too —
the building block for the "streaming BSM" extension exercise mentioned
in :mod:`repro.core.streaming`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.functions import (
    AverageUtility,
    GroupedObjective,
    ObjectiveState,
    Scalarizer,
    fold_states,
)
from repro.core.greedy import greedy_max
from repro.core.result import SolverResult, make_result
from repro.utils.timing import Timer
from repro.utils.validation import check_positive_int


@dataclass
class _Checkpoint:
    """A greedy-threshold sub-instance started at stream position ``start``."""

    start: int
    state: ObjectiveState
    #: Best true singleton value ``f({v})`` among arrivals since
    #: ``start`` — the documented sieve anchor for the optimum guess
    #: (marginal gains against the running state would understate it and
    #: loosen the admission threshold).
    max_singleton: float = 0.0


class SlidingWindowMaximizer:
    """Maintain a size-``k`` solution over the last ``window`` stream items.

    Feed items with :meth:`process`; read the current solution with
    :meth:`best` at any time. Each arriving item is offered to every
    live checkpoint with the Sieve-style threshold rule
    ``gain >= (v/2 - value) / (k - |S|)`` where ``v`` is the checkpoint's
    current optimum guess ``2 * max_singleton * k``, anchored on the
    best true singleton value among the arrivals the checkpoint has
    seen — a single-level simplification that keeps per-item work at one
    batched multi-state oracle call while preserving the constant-factor
    behaviour the experiments need.

    Checkpoints are spawned at every position and immediately thinned to
    a geometric start grid: a checkpoint started at position ``t`` is
    retained while ``t`` is one of the two most recent multiples of some
    block size ``b_i`` (``b_0 = 1``, ``b_{i+1} = ceil(spacing * b_i)``,
    up to the first block ``>= window``). Every scale's retention
    interval for ``t`` begins at ``t``, so their union is contiguous —
    a checkpoint is never dropped and needed again — and at most
    ``2 * num_blocks + 1`` checkpoints are ever live, the documented
    ``O(log window)`` bound with surviving ages on the geometric ladder
    ``1, s, s^2, ...``.

    Items are identified by their ground-set index; the stream may
    repeat an item (later arrivals refresh its recency).
    """

    def __init__(
        self,
        objective: GroupedObjective,
        k: int,
        window: int,
        *,
        scalarizer: Optional[Scalarizer] = None,
        spacing: float = 2.0,
    ) -> None:
        check_positive_int(k, "k")
        check_positive_int(window, "window")
        if spacing <= 1.0:
            raise ValueError(f"spacing must exceed 1, got {spacing}")
        self._objective = objective
        self._scal = scalarizer or AverageUtility()
        self._k = k
        self._window = window
        self._spacing = float(spacing)
        # Geometric block sizes 1, ceil(s), ceil(s*ceil(s)), ... up to the
        # first block covering the whole window.
        blocks = [1]
        while blocks[-1] < window:
            blocks.append(
                max(blocks[-1] + 1, int(np.ceil(blocks[-1] * self._spacing)))
            )
        self._blocks = blocks
        # Persistent empty state anchoring the singleton probes (gains
        # against it are pure, so one allocation serves the stream).
        self._empty = objective.new_state()
        self._clock = 0
        self._checkpoints: list[_Checkpoint] = []
        #: item -> last arrival position (for live-set reconstruction).
        self._last_seen: dict[int, int] = {}
        #: (clock, state) memo so polling :meth:`best` between arrivals
        #: does not replay the live-restriction rebuild each time.
        self._best_cache: Optional[tuple[int, ObjectiveState]] = None

    # -- public API ---------------------------------------------------------
    @property
    def clock(self) -> int:
        """Number of stream arrivals processed so far."""
        return self._clock

    @property
    def num_checkpoints(self) -> int:
        return len(self._checkpoints)

    def live_items(self) -> list[int]:
        """Items whose most recent arrival is inside the current window."""
        horizon = self._clock - self._window
        return sorted(
            item for item, pos in self._last_seen.items() if pos >= horizon
        )

    def process(self, item: int) -> None:
        """Consume one stream arrival."""
        if not 0 <= item < self._objective.num_items:
            raise IndexError(
                f"item {item} out of range [0, {self._objective.num_items})"
            )
        self._expire()
        self._maybe_spawn()
        self._last_seen[item] = self._clock
        open_ckpts = [
            c
            for c in self._checkpoints
            if not c.state.in_solution[item]
            and c.state.size < self._k
        ]
        # Checkpoints evolve independently, so one multi-state oracle
        # call scores the arrival against every checkpoint that can
        # still absorb it, with the shared empty state as row 0 — the
        # item's true singleton value, which anchors every checkpoint's
        # optimum guess.
        states = [self._empty] + [c.state for c in open_ckpts]
        values, gains_vec = fold_states(
            self._objective, self._scal, states, item
        )
        singleton = float(gains_vec[0])
        for ckpt in self._checkpoints:
            # Every live checkpoint observed this arrival (full ones and
            # ones already holding the item included: the singleton still
            # informs their guess).
            if singleton > ckpt.max_singleton:
                ckpt.max_singleton = singleton
        for pos, ckpt in enumerate(open_ckpts, start=1):
            state = ckpt.state
            gain = float(gains_vec[pos])
            guess = 2.0 * ckpt.max_singleton * self._k
            threshold = max(
                (guess / 2.0 - values[pos])
                / (self._k - state.size),
                0.0,
            )
            if gain >= threshold and gain > 0.0:
                self._objective.add(state, item)
        self._clock += 1

    def best(self) -> ObjectiveState:
        """Current best checkpoint state restricted to live items.

        The pre-horizon "cover" checkpoint retained by :meth:`_expire`
        saw every live item but may also still hold items that have aged
        out of the window, so any state containing dead items is
        re-evaluated on its live subset before competing. Younger
        checkpoints may score higher on the suffix they saw, so all live
        checkpoints compete.

        The result is memoised per clock tick: checkpoints only change
        inside :meth:`process`, so polling between arrivals replays
        neither the scan nor the live-restriction rebuild.
        """
        if (
            self._best_cache is not None
            and self._best_cache[0] == self._clock
        ):
            return self._best_cache[1]
        weights = self._objective.group_weights
        live = set(self.live_items())
        best_state = self._objective.new_state()
        best_value = 0.0
        for ckpt in self._checkpoints:
            state = ckpt.state
            if any(v not in live for v in state.selected):
                state = self._restrict_to_live(state, live)
            value = self._scal.value(state.group_values, weights)
            if value > best_value:
                best_value = value
                best_state = state
        self._best_cache = (self._clock, best_state)
        return best_state

    # -- internals ------------------------------------------------------
    def _restrict_to_live(
        self, state: ObjectiveState, live: set[int]
    ) -> ObjectiveState:
        """Fresh state holding only ``state``'s live items (original
        selection order, so the surviving greedy chain replays intact)."""
        fresh = self._objective.new_state()
        for item in state.selected:
            if item in live:
                self._objective.add(fresh, item)
        return fresh

    def _expire(self) -> None:
        horizon = self._clock - self._window
        survivors = [c for c in self._checkpoints if c.start > horizon]
        # Always keep at least the youngest pre-horizon checkpoint as the
        # "cover" instance until a fully in-window one matures.
        if len(survivors) != len(self._checkpoints):
            aged = [c for c in self._checkpoints if c.start <= horizon]
            if aged and not any(c.start <= horizon + 1 for c in survivors):
                survivors.insert(0, aged[-1])
        self._checkpoints = survivors

    def _retained_starts(self) -> set[int]:
        """Geometric start grid: the two most recent multiples of every
        block size (ages spread over the ladder ``1, s, s^2, ...``)."""
        starts: set[int] = set()
        for block in self._blocks:
            latest = (self._clock // block) * block
            starts.add(latest)
            if latest >= block:
                starts.add(latest - block)
        return starts

    def _maybe_spawn(self) -> None:
        """Spawn at the current position, then thin to the geometric grid.

        Every position gets exactly one checkpoint (``process`` advances
        the clock after each arrival, so no start can repeat; ``b_0 = 1``
        keeps it retained for at least two arrivals); thinning drops the
        starts that have fallen off every scale's two-multiple retention
        band. The oldest checkpoint is never thinned — :meth:`_expire`
        owns its retirement once it has served as the pre-horizon cover.
        """
        self._checkpoints.append(
            _Checkpoint(start=self._clock, state=self._objective.new_state())
        )
        retained = self._retained_starts()
        self._checkpoints = [
            c
            for index, c in enumerate(self._checkpoints)
            if index == 0 or c.start in retained
        ]


def sliding_window_utility(
    objective: GroupedObjective,
    k: int,
    window: int,
    stream: Optional[list[int]] = None,
    *,
    scalarizer: Optional[Scalarizer] = None,
) -> SolverResult:
    """Run a full stream through a :class:`SlidingWindowMaximizer`.

    Convenience wrapper mirroring :func:`repro.core.streaming.
    sieve_streaming`: returns the final-window solution with
    ``extra['checkpoints']`` reporting peak live checkpoints and
    ``extra['window']`` / ``extra['stream_length']`` the run shape.
    (The historical ``epsilon`` parameter was validated but never used —
    the maximizer's single-level guess has no geometric grid to
    resolve — so it has been removed.)
    """
    items = list(range(objective.num_items)) if stream is None else [
        int(v) for v in stream
    ]
    maximizer = SlidingWindowMaximizer(
        objective, k, window, scalarizer=scalarizer
    )
    timer = Timer()
    start_calls = objective.oracle_calls
    peak = 0
    with timer:
        for item in items:
            maximizer.process(item)
            peak = max(peak, maximizer.num_checkpoints)
        final = maximizer.best()
        # Practical augmentation: the threshold rule may underfill when
        # the optimum guess is coarse; top up to k greedily from the
        # items still alive in the window (standard post-processing that
        # only ever improves the solution).
        live = maximizer.live_items()
        if final.size < k and live:
            final, _ = greedy_max(
                objective,
                scalarizer or AverageUtility(),
                k - final.size,
                state=final,
                candidates=live,
            )
    return make_result(
        "SlidingWindow",
        objective,
        final,
        runtime=timer.elapsed,
        oracle_calls=objective.oracle_calls - start_calls,
        extra={
            "window": window,
            "stream_length": len(items),
            "checkpoints": peak,
        },
    )
