"""Sliding-window submodular maximisation over item streams.

The related-work section cites the sliding-window model [Epasto et al.
2017; Wang et al. 2017/2019]: maintain, at every point of an item
stream, a good size-``k`` solution over only the ``window`` most recent
items. This module implements the checkpoint scheme those papers build
on:

* keep several :func:`repro.core.streaming.sieve_streaming`-style
  sub-instances ("checkpoints"), each started at a different stream
  offset, so at any time at least one checkpoint covers exactly the
  items that are still alive;
* retire checkpoints whose start has aged out of the window; spawn new
  ones at a geometric spacing, which bounds the number of simultaneously
  live checkpoints by ``O(log window)`` at a constant-factor cost in the
  guarantee.

The maximiser tracks the *utility* objective by default but accepts any
scalarizer, so a fairness surrogate can be monitored over a stream too —
the building block for the "streaming BSM" extension exercise mentioned
in :mod:`repro.core.streaming`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.functions import (
    AverageUtility,
    GroupedObjective,
    ObjectiveState,
    Scalarizer,
)
from repro.core.greedy import greedy_max
from repro.core.result import SolverResult, make_result
from repro.utils.timing import Timer
from repro.utils.validation import check_fraction, check_positive_int


@dataclass
class _Checkpoint:
    """A greedy-threshold sub-instance started at stream position ``start``."""

    start: int
    state: ObjectiveState
    #: Best singleton value seen since ``start`` (threshold grid anchor).
    max_singleton: float = 0.0


class SlidingWindowMaximizer:
    """Maintain a size-``k`` solution over the last ``window`` stream items.

    Feed items with :meth:`process`; read the current solution with
    :meth:`best` at any time. Each arriving item is offered to every
    live checkpoint with the Sieve-style threshold rule
    ``gain >= (v/2 - value) / (k - |S|)`` where ``v`` is the checkpoint's
    current optimum guess ``2 * max_singleton * k`` — a single-level
    simplification that keeps per-item work at ``O(log window)`` oracle
    calls while preserving the constant-factor behaviour the experiments
    need.

    Items are identified by their ground-set index; the stream may
    repeat an item (later arrivals refresh its recency).
    """

    def __init__(
        self,
        objective: GroupedObjective,
        k: int,
        window: int,
        *,
        scalarizer: Optional[Scalarizer] = None,
        spacing: float = 2.0,
    ) -> None:
        check_positive_int(k, "k")
        check_positive_int(window, "window")
        if spacing <= 1.0:
            raise ValueError(f"spacing must exceed 1, got {spacing}")
        self._objective = objective
        self._scal = scalarizer or AverageUtility()
        self._k = k
        self._window = window
        self._spacing = float(spacing)
        self._clock = 0
        self._checkpoints: list[_Checkpoint] = []
        #: item -> last arrival position (for live-set reconstruction).
        self._last_seen: dict[int, int] = {}

    # -- public API ---------------------------------------------------------
    @property
    def clock(self) -> int:
        """Number of stream arrivals processed so far."""
        return self._clock

    @property
    def num_checkpoints(self) -> int:
        return len(self._checkpoints)

    def live_items(self) -> list[int]:
        """Items whose most recent arrival is inside the current window."""
        horizon = self._clock - self._window
        return sorted(
            item for item, pos in self._last_seen.items() if pos >= horizon
        )

    def process(self, item: int) -> None:
        """Consume one stream arrival."""
        if not 0 <= item < self._objective.num_items:
            raise IndexError(
                f"item {item} out of range [0, {self._objective.num_items})"
            )
        self._expire()
        self._maybe_spawn()
        self._last_seen[item] = self._clock
        weights = self._objective.group_weights
        for ckpt in self._checkpoints:
            state = ckpt.state
            if state.in_solution[item]:
                continue
            gains = self._objective.gains(state, item)
            gain = self._scal.gain(state.group_values, gains, weights)
            if gain > ckpt.max_singleton:
                ckpt.max_singleton = gain
            if state.size >= self._k:
                continue
            guess = 2.0 * ckpt.max_singleton * self._k
            value = self._scal.value(state.group_values, weights)
            threshold = max(
                (guess / 2.0 - value) / (self._k - state.size), 0.0
            )
            if gain >= threshold and gain > 0.0:
                self._objective.add(state, item)
        self._clock += 1

    def best(self) -> ObjectiveState:
        """Current best checkpoint state restricted to live items.

        The oldest live checkpoint saw every live item, so its solution
        only contains live items once stale checkpoints are expired;
        younger checkpoints may score higher on the suffix they saw, so
        all live checkpoints compete.
        """
        weights = self._objective.group_weights
        best_state = self._objective.new_state()
        best_value = 0.0
        for ckpt in self._checkpoints:
            value = self._scal.value(ckpt.state.group_values, weights)
            if value > best_value:
                best_value = value
                best_state = ckpt.state
        return best_state

    # -- internals ------------------------------------------------------
    def _expire(self) -> None:
        horizon = self._clock - self._window
        survivors = [c for c in self._checkpoints if c.start > horizon]
        # Always keep at least the youngest pre-horizon checkpoint as the
        # "cover" instance until a fully in-window one matures.
        if len(survivors) != len(self._checkpoints):
            aged = [c for c in self._checkpoints if c.start <= horizon]
            if aged and not any(c.start <= horizon + 1 for c in survivors):
                survivors.insert(0, aged[-1])
        self._checkpoints = survivors

    def _maybe_spawn(self) -> None:
        """Start a new checkpoint at geometric ages 1, s, s^2, ... ."""
        ages = {self._clock - c.start for c in self._checkpoints}
        if 0 in ages:
            return
        # Spawn whenever no checkpoint is younger than `spacing` times
        # the youngest age we want represented.
        youngest = min(ages) if ages else None
        if youngest is None or youngest >= self._spacing:
            self._checkpoints.append(
                _Checkpoint(
                    start=self._clock, state=self._objective.new_state()
                )
            )


def sliding_window_utility(
    objective: GroupedObjective,
    k: int,
    window: int,
    stream: Optional[list[int]] = None,
    *,
    epsilon: float = 0.1,
    scalarizer: Optional[Scalarizer] = None,
) -> SolverResult:
    """Run a full stream through a :class:`SlidingWindowMaximizer`.

    Convenience wrapper mirroring :func:`repro.core.streaming.
    sieve_streaming`: returns the final-window solution with
    ``extra['checkpoints']`` reporting peak live checkpoints and
    ``extra['window']`` / ``extra['stream_length']`` the run shape.
    """
    check_fraction(epsilon, "epsilon", inclusive_low=False,
                   inclusive_high=False)
    items = list(range(objective.num_items)) if stream is None else [
        int(v) for v in stream
    ]
    maximizer = SlidingWindowMaximizer(
        objective, k, window, scalarizer=scalarizer
    )
    timer = Timer()
    start_calls = objective.oracle_calls
    peak = 0
    with timer:
        for item in items:
            maximizer.process(item)
            peak = max(peak, maximizer.num_checkpoints)
        final = maximizer.best()
        # Practical augmentation: the threshold rule may underfill when
        # the optimum guess is coarse; top up to k greedily from the
        # items still alive in the window (standard post-processing that
        # only ever improves the solution).
        live = maximizer.live_items()
        if final.size < k and live:
            final, _ = greedy_max(
                objective,
                scalarizer or AverageUtility(),
                k - final.size,
                state=final,
                candidates=live,
            )
    return make_result(
        "SlidingWindow",
        objective,
        final,
        runtime=timer.elapsed,
        oracle_calls=objective.oracle_calls - start_calls,
        extra={
            "window": window,
            "stream_length": len(items),
            "checkpoints": peak,
        },
    )
