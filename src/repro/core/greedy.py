"""Greedy maximisation of scalarized grouped objectives.

Implements the three greedy variants the paper relies on:

* plain greedy [Nemhauser et al. 1978] — ``(1 - 1/e)``-approximation for
  monotone submodular maximisation under a cardinality constraint;
* lazy-forward / CELF greedy [Leskovec et al. 2007] — identical output,
  far fewer oracle calls (the paper uses it for *all* algorithms);
* stochastic greedy [Mirzasoleiman et al. 2015] — ``(1 - 1/e - eps)`` in
  expectation with ``O(n log(1/eps))`` total oracle calls (offered as the
  subsampling acceleration the related-work section mentions).

All variants also serve as the *greedy submodular cover* inner loop: pass
``stop_value`` to halt as soon as the scalar objective reaches a target
(Wolsey's greedy for submodular cover — see :mod:`repro.core.cover`).

Every loop drives the oracle through the *batch* API
(:meth:`GroupedObjective.gains_batch` + :meth:`Scalarizer.gain_batch`):
plain, stochastic and threshold greedy score their whole candidate pool
once per round with a single vectorized call, and CELF seeds its priority
queue with one batched pass before entering the heap. Selection is
unchanged — each round picks the same item (ties toward the lowest id)
the per-item loops would, so Saturate, greedy cover and both BSM
algorithms inherit the fast path with identical solutions.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.functions import GroupedObjective, ObjectiveState, Scalarizer
from repro.core.result import GreedyStep
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int

#: Gains below this are treated as zero (guards against float jitter
#: re-ordering items whose true marginal gain is identical).
GAIN_EPS = 1e-12


def greedy_max(
    objective: GroupedObjective,
    scalarizer: Scalarizer,
    budget: int,
    *,
    state: Optional[ObjectiveState] = None,
    candidates: Optional[Iterable[int]] = None,
    stop_value: Optional[float] = None,
    lazy: bool = True,
    tolerance: float = 1e-12,
) -> tuple[ObjectiveState, list[GreedyStep]]:
    """Greedily add up to ``budget`` items maximising ``scalarizer``.

    Parameters
    ----------
    objective, scalarizer:
        The grouped oracle and the scalar view being maximised.
    budget:
        Maximum number of items to *add* (on top of any items already in
        ``state``).
    state:
        Optional warm-start state; mutated in place when given.
    candidates:
        Ground-set restriction (defaults to all items).
    stop_value:
        Stop as soon as the scalar value reaches this target (submodular
        cover mode). ``None`` runs to the budget.
    lazy:
        Use the CELF priority queue. Correct for submodular scalarizations
        because stale upper bounds only overestimate gains.

    Returns
    -------
    (state, steps):
        The final state and the per-iteration trace.
    """
    check_positive_int(budget, "budget")
    if state is None:
        state = objective.new_state()
    cand = _candidate_list(objective, candidates, state)
    steps: list[GreedyStep] = []
    weights = objective.group_weights
    value = scalarizer.value(state.group_values, weights)
    if stop_value is not None and value >= stop_value - tolerance:
        return state, steps
    if lazy:
        _lazy_loop(
            objective, scalarizer, budget, state, cand, stop_value, steps,
            tolerance,
        )
    else:
        _plain_loop(
            objective, scalarizer, budget, state, cand, stop_value, steps,
            tolerance,
        )
    return state, steps


def _candidate_list(
    objective: GroupedObjective,
    candidates: Optional[Iterable[int]],
    state: ObjectiveState,
) -> "np.ndarray | list[int]":
    if candidates is None:
        # Whole ground set: stay vectorized — at a million items a
        # Python int list costs tens of MB and the loops below never
        # need one (same values, same ascending order).
        return np.flatnonzero(~state.in_solution).astype(np.int64)
    return [
        int(v) for v in candidates if not state.in_solution[int(v)]
    ]


def _pool_gains(
    objective: GroupedObjective,
    scalarizer: Scalarizer,
    state: ObjectiveState,
    items: Sequence[int],
    weights: np.ndarray,
) -> np.ndarray:
    """Scalar marginal gain of every item in ``items`` — one batched call."""
    gains_matrix = objective.gains_batch(state, items)
    return scalarizer.gain_batch(state.group_values, gains_matrix, weights)


#: Vectorized record-chain jumps before _scan_best falls back to the
#: per-entry loop. Random-order gains need ~ln(n) jumps, so the cap only
#: triggers on adversarially sorted pools.
_SCAN_MAX_JUMPS = 64


def _scan_best(items: Sequence[int], gains: np.ndarray) -> tuple[int, float]:
    """Best (item, gain) under the per-item loops' selection rule.

    Replays the sequential ``gain > best + GAIN_EPS`` scan over the
    batched gains so ties (and near-ties inside the epsilon band) break
    toward the earliest item exactly as the per-item loops did.

    The replay is a vectorized *record chain*: the sequential scan only
    changes state at indices where the gain beats the current record by
    more than ``GAIN_EPS``, and the next such index is by definition the
    first position after the current record with
    ``gain > best + GAIN_EPS`` — one ``argmax`` over the tail per jump.
    A uniformly shuffled pool sets ``O(log n)`` records, so the expected
    cost is ``O(n log n)`` flat NumPy passes instead of ``n`` Python
    iterations; a pathologically ascending pool falls back to the exact
    per-entry loop after :data:`_SCAN_MAX_JUMPS` jumps.
    """
    gains = np.asarray(gains)
    best_idx, best_gain = -1, 0.0
    pos = 0
    for _ in range(_SCAN_MAX_JUMPS):
        if pos >= gains.size:
            break
        rel = int(np.argmax(gains[pos:] > best_gain + GAIN_EPS))
        if not gains[pos + rel] > best_gain + GAIN_EPS:
            pos = gains.size
            break
        best_idx = pos + rel
        best_gain = float(gains[best_idx])
        pos = best_idx + 1
    else:
        # Jump cap hit: finish the remaining tail sequentially (exact
        # same rule, bounded Python work).
        for idx in np.nonzero(gains[pos:] > best_gain + GAIN_EPS)[0] + pos:
            gain = float(gains[idx])
            if gain > best_gain + GAIN_EPS:
                best_idx, best_gain = int(idx), gain
    if best_idx < 0:
        return -1, 0.0
    return int(items[best_idx]), best_gain


def _plain_loop(
    objective: GroupedObjective,
    scalarizer: Scalarizer,
    budget: int,
    state: ObjectiveState,
    cand: "np.ndarray | list[int]",
    stop_value: Optional[float],
    steps: list[GreedyStep],
    tolerance: float,
) -> None:
    weights = objective.group_weights
    # Sorted candidate order makes ties break toward the lowest item id,
    # the same order the lazy heap uses — keeps the variants comparable.
    # (np.unique == sorted(set(...)) — kept as an array so a million-item
    # pool costs one int64 vector per round, not a Python set.)
    remaining = np.unique(np.asarray(cand, dtype=np.int64))
    for _ in range(budget):
        if remaining.size == 0:
            break
        gains = _pool_gains(objective, scalarizer, state, remaining, weights)
        best_item, best_gain = _scan_best(remaining, gains)
        if best_item < 0:
            break  # no item improves the objective: greedy is saturated
        objective.add(state, best_item)
        remaining = remaining[remaining != best_item]
        value = scalarizer.value(state.group_values, weights)
        steps.append(GreedyStep(best_item, best_gain, value))
        if stop_value is not None and value >= stop_value - tolerance:
            break


def _resolve_ties(
    objective: GroupedObjective,
    scalarizer: Scalarizer,
    state: ObjectiveState,
    weights: np.ndarray,
    heap: list[tuple[float, int]],
    fresh: dict[int, int],
    round_no: int,
    best_item: int,
    best_gain: float,
) -> tuple[int, int | float]:
    """Settle an epsilon-band tie at the top of the CELF heap.

    Pops every entry whose cached bound could still tie with
    ``best_gain`` (rescoring stale ones), then replays the plain loop's
    sequential lowest-id scan over the contenders. Losers go back on the
    heap with fresh bounds. No-ops (one peek) when the top is clear of
    the band — the common case.
    """
    contenders = [(best_item, best_gain)]
    while heap and -heap[0][0] > best_gain - GAIN_EPS:
        neg_ub, item = heapq.heappop(heap)
        if state.in_solution[item]:
            continue
        if fresh[item] != round_no:
            gain = scalarizer.gain(
                state.group_values, objective.gains(state, item), weights
            )
            fresh[item] = round_no
            heapq.heappush(heap, (-gain, item))
            continue
        contenders.append((item, -neg_ub))
    if len(contenders) == 1:
        return best_item, best_gain
    contenders.sort()
    winner, winner_gain = -1, 0.0
    for item, gain in contenders:
        if gain > winner_gain + GAIN_EPS:
            winner, winner_gain = item, gain
    for item, gain in contenders:
        if item != winner:
            heapq.heappush(heap, (-gain, item))
    return winner, winner_gain


def _lazy_loop(
    objective: GroupedObjective,
    scalarizer: Scalarizer,
    budget: int,
    state: ObjectiveState,
    cand: "np.ndarray | list[int]",
    stop_value: Optional[float],
    steps: list[GreedyStep],
    tolerance: float,
) -> None:
    weights = objective.group_weights
    if len(cand) == 0:
        return
    # Heap of (-upper_bound, item). CELF must evaluate every item at least
    # once against the starting solution anyway, so the re-seeding pass
    # scores the whole pool with one batched call and enters the heap with
    # exact round-0 bounds (the classic variant pushes -inf bounds and
    # pays n Python round-trips to reach the same heap).
    seed_gains = _pool_gains(objective, scalarizer, state, cand, weights)
    heap: list[tuple[float, int]] = [
        (-float(gain), int(item)) for item, gain in zip(cand, seed_gains)
    ]
    heapq.heapify(heap)
    fresh: dict[int, int] = {
        int(item): 0 for item in cand
    }  # round of last eval
    round_no = 0
    while round_no < budget and heap:
        while heap:
            neg_ub, item = heapq.heappop(heap)
            if state.in_solution[item]:
                continue
            if fresh[item] == round_no:
                # Bound is current: this really is the best item.
                gain = -neg_ub
                if gain <= GAIN_EPS:
                    heap.clear()
                    break
                # Ties: the heap orders by exact floats, but the plain
                # loop's scan treats gains within GAIN_EPS as equal and
                # keeps the earliest item. Re-apply that rule over every
                # heap entry whose bound falls in the epsilon band, so a
                # mathematically exact tie whose two computations differ
                # in the last ulp cannot make the variants diverge.
                item, gain = _resolve_ties(
                    objective, scalarizer, state, weights,
                    heap, fresh, round_no, item, gain,
                )
                objective.add(state, item)
                value = scalarizer.value(state.group_values, weights)
                steps.append(GreedyStep(item, gain, value))
                round_no += 1
                if stop_value is not None and value >= stop_value - tolerance:
                    heap.clear()
                break
            gain = scalarizer.gain(
                state.group_values, objective.gains(state, item), weights
            )
            fresh[item] = round_no
            heapq.heappush(heap, (-gain, item))
        else:
            break


def stochastic_greedy_max(
    objective: GroupedObjective,
    scalarizer: Scalarizer,
    budget: int,
    *,
    epsilon: float = 0.1,
    candidates: Optional[Sequence[int]] = None,
    seed: SeedLike = None,
) -> tuple[ObjectiveState, list[GreedyStep]]:
    """Stochastic ("lazier than lazy") greedy.

    Each round evaluates a uniform random subset of ``(n/k) ln(1/eps)``
    candidates only. Offered as the subsampling accelerator from the
    related-work discussion; the paper's headline experiments use CELF.
    """
    check_positive_int(budget, "budget")
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    rng = as_generator(seed)
    state = objective.new_state()
    pool = list(range(objective.num_items)) if candidates is None else [
        int(v) for v in candidates
    ]
    weights = objective.group_weights
    sample_size = max(
        1, int(np.ceil(len(pool) / budget * np.log(1.0 / epsilon)))
    )
    steps: list[GreedyStep] = []
    for _ in range(budget):
        available = [v for v in pool if not state.in_solution[v]]
        if not available:
            break
        size = min(sample_size, len(available))
        sample_idx = rng.choice(len(available), size=size, replace=False)
        # Keep the draw order: the per-item loop scanned the sample as
        # drawn, and _scan_best preserves that tie-breaking.
        sample = [available[int(idx)] for idx in sample_idx]
        gains = _pool_gains(objective, scalarizer, state, sample, weights)
        best_item, best_gain = _scan_best(sample, gains)
        if best_item < 0:
            continue  # the whole sample was worthless; resample next round
        objective.add(state, best_item)
        steps.append(
            GreedyStep(
                best_item,
                best_gain,
                scalarizer.value(state.group_values, weights),
            )
        )
    return state, steps


def threshold_greedy_max(
    objective: GroupedObjective,
    scalarizer: Scalarizer,
    budget: int,
    *,
    epsilon: float = 0.1,
    candidates: Optional[Iterable[int]] = None,
) -> tuple[ObjectiveState, list[GreedyStep]]:
    """Descending-thresholds greedy [Badanidiyuru & Vondrák 2014].

    Sweeps thresholds ``d, d(1-eps), d(1-eps)^2, ...`` (``d`` = best
    singleton value) and adds any item whose current marginal gain meets
    the threshold. Each item is touched ``O(log(n/eps)/eps)`` times in
    total — independent of ``k`` — for a ``(1 - 1/e - eps)`` guarantee,
    making it the preferred accelerator when ``k`` is large and CELF's
    heap still degenerates to many re-evaluations.

    Like CELF, the batched sweep requires a *submodular* scalarization:
    after an add, items whose stale gain already missed the threshold are
    dropped for the rest of the sweep on the grounds that gains only
    decrease. Feeding a non-submodular scalarizer (e.g. ``MinUtility``)
    voids both the guarantee and the per-item-sweep equivalence.
    """
    check_positive_int(budget, "budget")
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    state = objective.new_state()
    pool = list(range(objective.num_items)) if candidates is None else [
        int(v) for v in candidates
    ]
    weights = objective.group_weights
    best_singleton = 0.0
    if pool:
        empty = objective.new_state()
        singleton_gains = _pool_gains(
            objective, scalarizer, empty, pool, weights
        )
        best_singleton = max(0.0, float(singleton_gains.max()))
    steps: list[GreedyStep] = []
    if best_singleton <= 0:
        return state, steps
    threshold = best_singleton
    floor = epsilon / len(pool) * best_singleton
    while threshold >= floor and state.size < budget:
        # One batched scoring of the remaining pool per sweep. After an
        # add, submodularity says stale gains only overestimate: items
        # already below the threshold stay below (drop them without a
        # fresh call), while stale *hits* are rescored in the next batch
        # before being trusted — the adds are exactly those the per-item
        # sweep would have made.
        current = [v for v in pool if not state.in_solution[v]]
        while current and state.size < budget:
            gains = _pool_gains(objective, scalarizer, state, current, weights)
            hit_pos = np.nonzero(gains >= threshold)[0]
            if hit_pos.size == 0:
                break
            first = int(hit_pos[0])
            item = current[first]
            objective.add(state, item)
            steps.append(
                GreedyStep(
                    item,
                    float(gains[first]),
                    scalarizer.value(state.group_values, weights),
                )
            )
            current = [current[i] for i in hit_pos[1:]]
        threshold *= 1.0 - epsilon
    return state, steps
