"""Saturate — bicriteria approximation for robust submodular maximisation.

Robust submodular maximisation (RSM) asks for ``argmax_{|S|<=k} min_i
f_i(S)``. It is inapproximable within any constant factor in polynomial
time [Krause et al. 2008], but Saturate obtains the optimal value by
relaxing the cardinality constraint: binary-search the achievable level
``t``, and for each candidate level run greedy partial cover (GPC) on the
truncated average ``(1/c) sum_i min(f_i(S), t)/t``, declaring ``t``
feasible when GPC saturates within the (possibly inflated) budget.

The paper uses Saturate in three roles:

* baseline RSM solver ("Saturate" curves, with budget exactly ``k``);
* sub-routine producing ``OPT'_g`` and ``S_g`` inside both BSM algorithms;
* conceptual template for BSM-Saturate's bisection on ``alpha``.

With ``size_multiplier = 1`` (the paper's practical setting) the returned
solution has ``|S| <= k`` and ``OPT'_g`` is a lower bound on ``OPT_g``;
with the theoretical multiplier ``1 + ln(c/theta)`` the classical
bicriteria guarantee of [Krause et al. 2008, Thm 8] applies.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.core.cover import greedy_cover
from repro.core.functions import (
    AverageUtility,
    GroupedObjective,
    ObjectiveState,
    TruncatedFairness,
)
from repro.core.greedy import greedy_max
from repro.core.result import SolverResult, make_result
from repro.utils.timing import Timer
from repro.utils.validation import check_positive_int

#: Relative width of the bisection interval at which the search stops.
DEFAULT_BISECTION_TOL = 1e-3
#: Hard cap on bisection iterations (the interval halves every step, so 60
#: iterations exhaust double precision).
MAX_BISECTION_ITERS = 60


def saturate(
    objective: GroupedObjective,
    k: int,
    *,
    size_multiplier: float = 1.0,
    candidates: Optional[Iterable[int]] = None,
    bisection_tol: float = DEFAULT_BISECTION_TOL,
    grid: int = 8,
    lazy: bool = True,
) -> SolverResult:
    """Run Saturate for ``max_{|S| <= k} min_i f_i(S)``.

    Parameters
    ----------
    k:
        Cardinality constraint of the RSM instance.
    size_multiplier:
        Budget inflation factor ``alpha``: GPC may use ``ceil(alpha * k)``
        items. 1.0 reproduces the paper's "solutions of size at most k"
        adaptation; the theoretical guarantee needs ``1 + ln(c/theta)``.
    bisection_tol:
        Stop when ``(t_max - t_min) <= bisection_tol * t_max``.
    grid:
        Number of evenly-spaced levels probed before the bisection. GPC is
        greedy, so feasibility is *not* monotone in the level: a probe at a
        high level can produce a better-`g` solution even though a lower
        level failed. The grid seeds the best-actual-`g` tracking with
        such states (0 disables it).

    Returns
    -------
    SolverResult
        ``fairness`` is ``OPT'_g``; ``extra['level']`` is the saturated
        level ``t_min``; ``extra['bisection_iters']`` counts probes.
    """
    check_positive_int(k, "k")
    if size_multiplier < 1.0:
        raise ValueError(f"size_multiplier must be >= 1, got {size_multiplier}")
    budget = int(np.ceil(size_multiplier * k))
    cand = list(range(objective.num_items)) if candidates is None else [
        int(v) for v in candidates
    ]
    timer = Timer()
    start_calls = objective.oracle_calls
    with timer:
        upper = float(objective.max_group_values().min())
        best_state: Optional[ObjectiveState] = None
        iters = 0
        if upper <= 0.0:
            # Some group derives zero utility from the entire ground set;
            # the RSM optimum is 0 and any set works. Return greedy-on-f
            # of size k so the result is still a sensible solution.
            best_state, _ = greedy_max(
                objective, AverageUtility(), k, candidates=cand, lazy=lazy
            )
            t_min = 0.0
        else:
            # Bisection on the level t. Every probe's GPC state is a valid
            # size-<=budget solution whether or not it covers, and its
            # *actual* min_i f_i can exceed the probed level (covering only
            # certifies >= t), so we keep the best-actual-g state across
            # all probes. This is a strict improvement over returning the
            # last feasible state and is what recovers the paper's
            # Example-3.1 outcome (S_g = {v1, v4}, OPT'_g = 5/9) despite
            # GPC's greedy failing at the boundary level.
            t_min, t_max = 0.0, upper
            best_g = -1.0
            for i in range(1, max(grid, 0) + 1):
                iters += 1
                t = upper * i / (grid + 1)
                state, _, covered = greedy_cover(
                    objective,
                    TruncatedFairness(t),
                    target=1.0,
                    budget=budget,
                    candidates=cand,
                    lazy=lazy,
                )
                actual_g = objective.fairness(state)
                if actual_g > best_g:
                    best_g = actual_g
                    best_state = state
                if covered:
                    t_min = max(t_min, t)
            # Standard bisection refines between the best covered level and
            # the ground-set upper bound.
            t_max = upper
            while (
                t_max - t_min > bisection_tol * t_max
                and iters < MAX_BISECTION_ITERS
            ):
                iters += 1
                t = (t_min + t_max) / 2.0
                state, _, covered = greedy_cover(
                    objective,
                    TruncatedFairness(t),
                    target=1.0,
                    budget=budget,
                    candidates=cand,
                    lazy=lazy,
                )
                actual_g = objective.fairness(state)
                if actual_g > best_g:
                    best_g = actual_g
                    best_state = state
                if covered:
                    t_min = t
                else:
                    t_max = t
            if best_state is None:  # pragma: no cover - defensive
                t = max(t_min, bisection_tol * upper)
                best_state, _, _ = greedy_cover(
                    objective,
                    TruncatedFairness(t),
                    target=1.0,
                    budget=budget,
                    candidates=cand,
                    lazy=lazy,
                )
            t_min = max(t_min, best_g)
    result = make_result(
        "Saturate",
        objective,
        best_state,
        runtime=timer.elapsed,
        oracle_calls=objective.oracle_calls - start_calls,
        extra={
            "level": t_min,
            "bisection_iters": iters,
            "budget": budget,
            "upper_bound": upper if upper > 0 else 0.0,
        },
    )
    return result
