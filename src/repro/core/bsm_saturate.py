"""BSM-Saturate — Algorithm 2 of the paper.

Converts the BSM instance into a family of submodular-cover decision
problems indexed by the utility factor ``alpha``: is there a set whose
combined truncated objective

    F'_alpha(S) = min(1, f(S)/(alpha*OPT'_f))
                + (1/c) * sum_i min(1, f_i(S)/(tau*OPT'_g))

reaches ``2(1 - eps/c)``? A bisection on ``alpha in [0, 1]`` keeps the
largest feasible value; each decision is answered by greedy submodular
cover with budget ``k ln(c/eps)`` (theoretical mode) or ``k`` (the paper's
practical adaptation, used in all its experiments).

Guarantee (Theorem 4.5): with the theoretical budget the output is a
``((1-3eps-eps_f) alpha*, 1-2eps-eps_g)``-approximate solution of size at
most ``k ln(c/eps)``, where ``alpha*`` is the instance's best achievable
factor.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from repro.core.baselines import greedy_utility
from repro.core.cover import greedy_cover
from repro.core.functions import AverageUtility, BSMCombined, GroupedObjective
from repro.core.greedy import greedy_max
from repro.core.result import SolverResult, make_result
from repro.core.saturate import saturate
from repro.utils.timing import Timer
from repro.utils.validation import check_fraction, check_positive_int

#: The paper sets eps = 0.05 throughout Section 5 (sensitivity in Fig. 9).
DEFAULT_EPSILON = 0.05


def bsm_saturate(
    objective: GroupedObjective,
    k: int,
    tau: float,
    *,
    epsilon: float = DEFAULT_EPSILON,
    enforce_size_k: bool = True,
    candidates: Optional[Iterable[int]] = None,
    lazy: bool = True,
    greedy_result: Optional[SolverResult] = None,
    saturate_result: Optional[SolverResult] = None,
) -> SolverResult:
    """Run BSM-Saturate (Algorithm 2).

    Parameters
    ----------
    epsilon:
        Bisection stop parameter (``(1-eps) alpha_max > alpha_min`` keeps
        searching) and cover slack (target ``2(1 - eps/c)``).
    enforce_size_k:
        ``True`` replaces the theoretical budget ``k ln(c/eps)`` with ``k``
        — the paper's practical mode and the setting of every figure.
        ``False`` uses the theoretical budget, so ``|S|`` may exceed ``k``.
    greedy_result, saturate_result:
        Optional precomputed sub-routines (shared across a ``tau`` sweep).

    Returns
    -------
    SolverResult
        ``extra`` records ``alpha_min``/``alpha_max`` at termination, the
        number of bisection probes, the cover budget, and the sub-routine
        approximations ``opt_f_approx``/``opt_g_approx``.
    """
    check_positive_int(k, "k")
    check_fraction(tau, "tau")
    check_fraction(epsilon, "epsilon", inclusive_low=False, inclusive_high=False)
    timer = Timer()
    start_calls = objective.oracle_calls
    with timer:
        if greedy_result is None:
            greedy_result = greedy_utility(
                objective, k, candidates=candidates, lazy=lazy
            )
        if saturate_result is None:
            saturate_result = saturate(objective, k, candidates=candidates, lazy=lazy)
        opt_f_approx = greedy_result.utility
        opt_g_approx = saturate_result.fairness
        c = objective.num_groups
        if enforce_size_k:
            budget = k
        else:
            budget = max(k, int(math.ceil(k * math.log(c / epsilon))))
        fairness_threshold = tau * opt_g_approx
        if tau == 0.0 or fairness_threshold <= 0.0 or opt_f_approx <= 0.0:
            # Degenerate instances: no binding fairness constraint (or a
            # zero-utility instance) — return the greedy utility solution.
            state = objective.new_state()
            for item in greedy_result.solution:
                objective.add(state, item)
            degenerate = make_result(
                "BSM-Saturate",
                objective,
                state,
                oracle_calls=objective.oracle_calls - start_calls,
                extra={
                    "alpha_min": 1.0,
                    "alpha_max": 1.0,
                    "bisection_iters": 0,
                    "budget": budget,
                    "opt_f_approx": opt_f_approx,
                    "opt_g_approx": opt_g_approx,
                    "degenerate": True,
                },
            )
        else:
            degenerate = None
    if degenerate is not None:
        # Timer.elapsed is only final outside the `with` block.
        degenerate.runtime = timer.elapsed
        return degenerate
    with timer:
        target = 2.0 * (1.0 - epsilon / c)
        alpha_min, alpha_max = 0.0, 1.0
        best_state = None
        iters = 0
        while (1.0 - epsilon) * alpha_max > alpha_min:
            iters += 1
            alpha = (alpha_max + alpha_min) / 2.0
            surrogate = BSMCombined(
                utility_threshold=alpha * opt_f_approx,
                fairness_threshold=fairness_threshold,
            )
            state, _, covered = greedy_cover(
                objective,
                surrogate,
                target=target,
                budget=budget,
                candidates=candidates,
                lazy=lazy,
            )
            if covered:
                alpha_min = alpha
                best_state = state
            else:
                alpha_max = alpha
        if best_state is None:
            # Not even alpha ~ 0 was coverable within budget: the fairness
            # part alone cannot saturate with <= budget items. Fall back to
            # the Saturate solution S_g (the fairest size-k set we know).
            best_state = objective.new_state()
            for item in saturate_result.solution[:budget]:
                objective.add(best_state, item)
        # The bisection's last accepted state may have fewer than k items
        # (cover can saturate early); spend any remaining slots on utility.
        if best_state.size < k:
            greedy_max(
                objective,
                AverageUtility(),
                k - best_state.size,
                state=best_state,
                candidates=candidates,
                lazy=lazy,
            )
    return make_result(
        "BSM-Saturate",
        objective,
        best_state,
        runtime=timer.elapsed,
        oracle_calls=objective.oracle_calls - start_calls,
        feasible=objective.fairness(best_state) >= fairness_threshold - 1e-9,
        extra={
            "alpha_min": alpha_min,
            "alpha_max": alpha_max,
            "bisection_iters": iters,
            "budget": budget,
            "opt_f_approx": opt_f_approx,
            "opt_g_approx": opt_g_approx,
            "degenerate": False,
        },
    )
