"""Unconstrained baselines: Greedy (SM) and a thin RSM wrapper.

``Greedy`` maximises the utility objective ``f`` alone (the classic
``(1 - 1/e)``-approximation) and is both a baseline curve in every figure
and the sub-routine producing ``S_f`` / ``OPT'_f`` inside the BSM
algorithms. The RSM baseline is :func:`repro.core.saturate.saturate`.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.functions import AverageUtility, GroupedObjective
from repro.core.greedy import greedy_max, stochastic_greedy_max
from repro.core.result import SolverResult, make_result
from repro.utils.rng import SeedLike
from repro.utils.timing import Timer
from repro.utils.validation import check_positive_int


def greedy_utility(
    objective: GroupedObjective,
    k: int,
    *,
    candidates: Optional[Iterable[int]] = None,
    lazy: bool = True,
) -> SolverResult:
    """Classic greedy for ``max_{|S|=k} f(S)`` (the paper's "Greedy")."""
    check_positive_int(k, "k")
    timer = Timer()
    start_calls = objective.oracle_calls
    with timer:
        state, steps = greedy_max(
            objective, AverageUtility(), k, candidates=candidates, lazy=lazy
        )
    return make_result(
        "Greedy",
        objective,
        state,
        runtime=timer.elapsed,
        oracle_calls=objective.oracle_calls - start_calls,
        steps=steps,
    )


def stochastic_greedy_utility(
    objective: GroupedObjective,
    k: int,
    *,
    epsilon: float = 0.1,
    seed: SeedLike = None,
) -> SolverResult:
    """Stochastic-greedy SM baseline (subsampling accelerator)."""
    check_positive_int(k, "k")
    timer = Timer()
    start_calls = objective.oracle_calls
    with timer:
        state, steps = stochastic_greedy_max(
            objective, AverageUtility(), k, epsilon=epsilon, seed=seed
        )
    return make_result(
        "StochasticGreedy",
        objective,
        state,
        runtime=timer.elapsed,
        oracle_calls=objective.oracle_calls - start_calls,
        steps=steps,
        extra={"epsilon": epsilon},
    )
