"""repro — reproduction of "Balancing Utility and Fairness in Submodular
Maximization" (Wang, Li, Bonchi, Wang; EDBT 2024).

The package implements the Bicriteria Submodular Maximization (BSM)
problem, its two instance-dependent approximation algorithms
(BSM-TSGreedy, BSM-Saturate), every baseline the paper compares against
(Greedy, Saturate, SMSC, BSM-Optimal via ILP), the three application
domains (maximum coverage, influence maximization, facility location) and
the complete experimental harness regenerating Tables 1–2 and Figures
3–11.

Quickstart::

    from repro import BSMProblem, load_dataset

    data = load_dataset("rand-mc-c2", seed=7)
    problem = BSMProblem(data.objective, k=5, tau=0.8)
    result = problem.solve("bsm-saturate")
    print(result.summary())
"""

from repro.core import (
    AverageUtility,
    BSMProblem,
    GroupedObjective,
    MinUtility,
    PerUserObjective,
    SolverResult,
    TruncatedFairness,
    bsm_saturate,
    bsm_tsgreedy,
    greedy_utility,
    saturate,
    smsc,
)
from repro.datasets import load_dataset
from repro.graphs import Graph
from repro.problems import (
    CoverageObjective,
    FacilityLocationObjective,
    InfluenceObjective,
    RecommendationObjective,
    SummarizationObjective,
    kmedian_benefits,
    latent_relevance,
    rbf_benefits,
)

__version__ = "1.0.0"

__all__ = [
    "AverageUtility",
    "BSMProblem",
    "CoverageObjective",
    "FacilityLocationObjective",
    "Graph",
    "GroupedObjective",
    "InfluenceObjective",
    "MinUtility",
    "PerUserObjective",
    "RecommendationObjective",
    "SummarizationObjective",
    "SolverResult",
    "TruncatedFairness",
    "__version__",
    "bsm_saturate",
    "bsm_tsgreedy",
    "greedy_utility",
    "kmedian_benefits",
    "latent_relevance",
    "load_dataset",
    "rbf_benefits",
    "saturate",
    "smsc",
]
