"""Command-line interface: solve instances and regenerate experiments.

Eight subcommands::

    python -m repro.cli solve --dataset rand-mc-c2 --algorithm bsm-saturate \
        --k 5 --tau 0.8
    python -m repro.cli figure fig3 --scale small
    python -m repro.cli chart fig3 --metric fairness    # ASCII line plot
    python -m repro.cli pareto --dataset rand-mc-c2 --k 5
    python -m repro.cli datasets            # list the catalogue
    python -m repro.cli serve               # JSON-lines daemon on stdio
    python -m repro.cli serve --tcp 127.0.0.1:7077      # asyncio TCP front-end
    python -m repro.cli request '{"op": "solve", "dataset": "rand-mc-c2"}'
    python -m repro.cli loadgen --tcp 127.0.0.1:7077 --connections 8

The CLI is a thin veneer over :class:`repro.core.problem.BSMProblem`,
:mod:`repro.experiments.figures` and the persistent service layer
(:mod:`repro.service`); anything it prints can be produced
programmatically too. ``serve`` keeps solver sessions warm across
requests (sampled RR collections, benefit matrices, evaluation bundles
survive between lines), which is what makes repeated requests against
one dataset cheap; ``request`` is the matching one-shot runner. The
``update`` op additionally takes ``edge_events`` — arc-level graph
mutations (``[["set_probability", u, v, p], ...]``) that warm influence
sessions absorb by repairing their sampled state in place rather than
resampling (see DESIGN.md §9).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.problem import BSMProblem
from repro.datasets.registry import DATASETS, load_dataset
from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.reporting import render_series


def _add_workers_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker-pool width for RR sampling and Monte-Carlo "
            "evaluation (default: serial; -1 = one per *available* CPU, "
            "i.e. the scheduling affinity mask, not the machine core "
            "count; results are identical for every positive worker "
            "count)"
        ),
    )


def _add_backend_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=["serial", "thread", "process"],
        default=None,
        help=(
            "worker-pool flavour for --workers: 'thread' (default) "
            "shares CSR arrays zero-copy and releases the GIL inside "
            "the numpy/compiled kernels, 'process' forks a "
            "shared-memory pool, 'serial' runs the decomposition "
            "inline; results are bitwise-identical across backends"
        ),
    )


def _add_store_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        choices=["ram", "mmap"],
        default="ram",
        help=(
            "storage tier for sampled RR sets: 'ram' keeps flat "
            "in-memory arrays, 'mmap' streams them into memory-mapped "
            "segments so graphs far larger than RAM stay solvable"
        ),
    )
    parser.add_argument(
        "--memory-budget",
        type=int,
        default=0,
        help=(
            "resident-byte budget for --store mmap (sets the segment "
            "size; 0 = default 32 MiB segments)"
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Balancing Utility and Fairness in Submodular Maximization "
            "(EDBT 2024) — reproduction CLI"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve one BSM instance")
    solve.add_argument("--dataset", required=True, choices=sorted(DATASETS))
    solve.add_argument(
        "--algorithm",
        default="bsm-saturate",
        help="solver name (see BSMProblem.available_algorithms)",
    )
    solve.add_argument("--k", type=int, default=5)
    solve.add_argument("--tau", type=float, default=0.8)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument(
        "--im-samples", type=int, default=2_000,
        help="RR samples for influence datasets",
    )
    _add_workers_flag(solve)
    _add_backend_flag(solve)
    _add_store_flags(solve)

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("figure_id", choices=sorted(FIGURES))
    figure.add_argument("--scale", default="small", choices=["small", "paper"])
    figure.add_argument("--seed", type=int, default=0)
    figure.add_argument(
        "--metric",
        default="utility",
        choices=["utility", "fairness", "runtime"],
    )
    _add_workers_flag(figure)

    chart = sub.add_parser(
        "chart", help="regenerate one figure as an ASCII line chart"
    )
    chart.add_argument("figure_id", choices=sorted(FIGURES))
    chart.add_argument("--scale", default="small", choices=["small", "paper"])
    chart.add_argument("--seed", type=int, default=0)
    chart.add_argument(
        "--metric",
        default="utility",
        choices=["utility", "fairness", "runtime"],
    )
    chart.add_argument("--width", type=int, default=60)
    chart.add_argument("--height", type=int, default=16)
    _add_workers_flag(chart)

    pareto = sub.add_parser(
        "pareto", help="print the utility-fairness frontier of a tau sweep"
    )
    pareto.add_argument("--dataset", required=True, choices=sorted(DATASETS))
    pareto.add_argument("--k", type=int, default=5)
    pareto.add_argument("--seed", type=int, default=0)
    pareto.add_argument(
        "--algorithms",
        nargs="+",
        default=["BSM-TSGreedy", "BSM-Saturate"],
    )
    pareto.add_argument(
        "--taus",
        nargs="+",
        type=float,
        default=[0.1, 0.3, 0.5, 0.7, 0.9],
    )
    _add_workers_flag(pareto)

    sub.add_parser("datasets", help="list the dataset catalogue")

    serve = sub.add_parser(
        "serve",
        help=(
            "run the persistent solver service (JSON lines on stdio, "
            "or TCP with --tcp)"
        ),
    )
    serve.add_argument(
        "--max-sessions", type=int, default=8,
        help="warm dataset sessions kept live (LRU beyond this)",
    )
    serve.add_argument(
        "--tcp", metavar="HOST:PORT", default=None,
        help=(
            "listen on TCP instead of stdio (same JSON-lines wire "
            "format; port 0 binds an ephemeral port, announced on "
            "stdout)"
        ),
    )
    serve.add_argument(
        "--max-queue-depth", type=int, default=256,
        help=(
            "TCP admission control: requests admitted but unanswered "
            "beyond this are rejected immediately with ok:false, "
            "error:'overloaded' and a retry_after_ms hint"
        ),
    )
    serve.add_argument(
        "--max-inflight", type=int, default=2,
        help="TCP: engine batches in flight on the worker pool",
    )
    serve.add_argument(
        "--batch-window-ms", type=float, default=5.0,
        help=(
            "TCP micro-batching window: concurrent requests arriving "
            "within this many ms are handled as one engine batch, so "
            "compatible solves coalesce across connections"
        ),
    )
    serve.add_argument(
        "--max-line-bytes", type=int, default=1 << 20,
        help="TCP: longest accepted request line",
    )
    serve.add_argument(
        "--shards", type=int, default=1,
        help=(
            "TCP: engine worker processes; requests route by dataset "
            "(crc32(dataset) %% shards) so warm sessions stay affine. "
            "1 (default) keeps the engine in-process"
        ),
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None,
        help=(
            "TCP: also serve Prometheus text metrics over HTTP on this "
            "port (0 binds an ephemeral port, announced on stdout)"
        ),
    )
    _add_workers_flag(serve)
    _add_backend_flag(serve)
    _add_store_flags(serve)

    request = sub.add_parser(
        "request",
        help="run one service request in-process and print the response",
    )
    request.add_argument(
        "request_json",
        help=(
            "JSON request object, e.g. "
            "'{\"op\": \"solve\", \"dataset\": \"rand-mc-c2\", \"k\": 5}'"
        ),
    )
    request.add_argument(
        "--tcp", metavar="HOST:PORT", default=None,
        help=(
            "send the request to a running `repro serve --tcp` server "
            "instead of solving in-process"
        ),
    )
    request.add_argument(
        "--timeout", type=float, default=60.0,
        help=(
            "TCP connect/read timeout in seconds (0 waits forever); "
            "a timeout exits with status 3 and a one-line error"
        ),
    )
    _add_workers_flag(request)
    _add_backend_flag(request)

    loadgen = sub.add_parser(
        "loadgen",
        help=(
            "open-loop load generator against a running "
            "`repro serve --tcp` endpoint; prints a JSON report"
        ),
    )
    loadgen.add_argument(
        "--tcp", metavar="HOST:PORT", required=True,
        help="server address to drive",
    )
    loadgen.add_argument("--connections", type=int, default=8)
    loadgen.add_argument(
        "--rate", type=float, default=100.0,
        help="aggregate arrival rate, requests/second (open loop)",
    )
    loadgen.add_argument("--duration", type=float, default=2.0)
    loadgen.add_argument(
        "--requests", type=int, default=None,
        help="total request count (overrides --duration)",
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--datasets", nargs="+", default=["rand-mc-c2"],
        choices=sorted(DATASETS),
    )
    loadgen.add_argument(
        "--mix", default="solve=0.55,evaluate=0.2,update=0.15,stats=0.1",
        help="op weights, e.g. 'solve=0.8,stats=0.2'",
    )
    loadgen.add_argument("--im-samples", type=int, default=300)
    loadgen.add_argument(
        "--schema", type=int, default=2, choices=[1, 2],
        help="wire version to emit (2 = typed envelope, 1 = flat)",
    )
    return parser


def cmd_solve(args: argparse.Namespace) -> int:
    data = load_dataset(args.dataset, seed=args.seed)
    if data.kind == "influence":
        from repro.problems.influence import InfluenceObjective

        store = getattr(args, "store", "ram")
        budget = getattr(args, "memory_budget", 0) or None
        objective = InfluenceObjective.from_graph(
            data.graph, args.im_samples, seed=args.seed,
            workers=args.workers,
            exec_backend=getattr(args, "backend", None),
            store=store, memory_budget=budget,
        )
    else:
        objective = data.objective
    problem = BSMProblem(objective, k=args.k, tau=args.tau)
    result = problem.solve(args.algorithm)
    print(result.summary())
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    results = run_figure(
        args.figure_id, scale=args.scale, seed=args.seed, workers=args.workers
    )
    for panel, sweep in results.items():
        print(f"\n[{args.figure_id} {panel}]")
        print(render_series(sweep, args.metric))
    return 0


def cmd_chart(args: argparse.Namespace) -> int:
    from repro.experiments.plotting import sweep_chart

    results = run_figure(
        args.figure_id, scale=args.scale, seed=args.seed, workers=args.workers
    )
    for panel, sweep in results.items():
        print(f"\n[{args.figure_id} {panel}]")
        print(
            sweep_chart(
                sweep, args.metric, width=args.width, height=args.height
            )
        )
    return 0


def cmd_pareto(args: argparse.Namespace) -> int:
    from repro.experiments.harness import sweep_tau
    from repro.experiments.pareto import hypervolume, pareto_frontier

    data = load_dataset(args.dataset, seed=args.seed)
    sweep = sweep_tau(
        data,
        args.k,
        args.taus,
        algorithms=args.algorithms,
        seed=args.seed,
        workers=args.workers,
    )
    for algorithm in args.algorithms:
        frontier = pareto_frontier(sweep, algorithm)
        print(f"\n{algorithm}: hypervolume={hypervolume(frontier):.4f}")
        for point in frontier:
            print(
                f"  tau={point.tau:.2f}  g(S)={point.fairness:.4f}  "
                f"f(S)={point.utility:.4f}"
            )
    return 0


def cmd_datasets(args: argparse.Namespace) -> int:
    for name in sorted(DATASETS):
        print(name)
    return 0


def _parse_hostport(spec: str) -> tuple[str, int]:
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"--tcp expects HOST:PORT, got {spec!r}")
    return host, int(port)


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceEngine, serve_forever

    engine_config = dict(
        workers=args.workers, exec_backend=args.backend,
        max_sessions=args.max_sessions,
        store=args.store, memory_budget=args.memory_budget or None,
    )
    if args.tcp:
        from repro.service.server import run_tcp_server

        if args.shards < 1:
            raise SystemExit(f"--shards must be >= 1, got {args.shards}")
        host, port = _parse_hostport(args.tcp)
        # Engines are built from the config, not passed in: with
        # --shards > 1 each worker process constructs its own.
        return run_tcp_server(
            host=host, port=port,
            max_queue_depth=args.max_queue_depth,
            max_inflight=args.max_inflight,
            batch_window=args.batch_window_ms / 1000.0,
            max_line_bytes=args.max_line_bytes,
            shards=args.shards,
            engine_config=engine_config,
            metrics_port=args.metrics_port,
        )
    return serve_forever(
        sys.stdin, sys.stdout, engine=ServiceEngine(**engine_config)
    )


def cmd_request(args: argparse.Namespace) -> int:
    from repro.service import ServiceEngine, encode_response
    from repro.service.protocol import (
        ProtocolError,
        decode_request,
        decode_response,
        encode_request,
    )

    try:
        request = decode_request(args.request_json)
    except ProtocolError as exc:
        print(f"invalid request: {exc}", file=sys.stderr)
        return 2
    if args.tcp:
        import socket

        host, port = _parse_hostport(args.tcp)
        if args.timeout < 0:
            print(f"--timeout must be >= 0, got {args.timeout}", file=sys.stderr)
            return 2
        timeout = args.timeout or None  # 0 = wait forever
        # Re-encode the validated request: a flat request goes out as
        # v1 bytes, a typed one as the v2 envelope — same version in,
        # same version out.
        try:
            with socket.create_connection((host, port), timeout=timeout) as sock:
                sock.sendall((encode_request(request) + "\n").encode("utf-8"))
                with sock.makefile("r", encoding="utf-8") as stream:
                    line = stream.readline().strip()
        except socket.timeout:
            # Long cold solves can outlive any finite timeout; fail with
            # one line, not a traceback (use --timeout 0 to wait).
            print(
                f"request timed out after {args.timeout:g}s "
                f"(raise --timeout, or 0 to wait forever)",
                file=sys.stderr,
            )
            return 3
        except OSError as exc:
            print(f"connection to {host}:{port} failed: {exc}", file=sys.stderr)
            return 3
        if not line:
            print("connection closed without a response", file=sys.stderr)
            return 2
        print(line)
        try:
            response = decode_response(line)
        except ProtocolError as exc:
            print(f"invalid response: {exc}", file=sys.stderr)
            return 2
        return 0 if response.ok else 1
    engine = ServiceEngine(workers=args.workers, exec_backend=args.backend)
    response = engine.handle(request)
    print(encode_response(response))
    return 0 if response.ok else 1


def cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.service.loadgen import LoadScript, parse_mix, run_load

    host, port = _parse_hostport(args.tcp)
    script = LoadScript(
        datasets=tuple(args.datasets),
        mix=parse_mix(args.mix),
        im_samples=args.im_samples,
        seed=args.seed,
        schema=args.schema,
    )
    report = asyncio.run(
        run_load(
            host, port,
            connections=args.connections,
            rate=args.rate,
            duration=args.duration,
            total=args.requests,
            script=script,
        )
    )
    print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    return 0 if report.completed > 0 and report.lost == 0 else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "solve":
        return cmd_solve(args)
    if args.command == "figure":
        return cmd_figure(args)
    if args.command == "chart":
        return cmd_chart(args)
    if args.command == "pareto":
        return cmd_pareto(args)
    if args.command == "datasets":
        return cmd_datasets(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "request":
        return cmd_request(args)
    if args.command == "loadgen":
        return cmd_loadgen(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
