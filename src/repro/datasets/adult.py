"""Adult-like socioeconomic records (Table 2 substitute).

The UCI Adult dataset is not redistributable offline. The FL experiments
only consume (a) a 6-dimensional numeric feature vector per record and
(b) a sensitive attribute (gender or race) with the published marginals,
so this generator samples records whose features correlate mildly with
the group label — enough structure that fairness genuinely constrains
facility placement, as it does on the real data.

Feature semantics mirror Adult's numeric columns: age, final weight
(log-scaled), education-num, capital-gain (log), capital-loss (log),
hours-per-week. Features are z-normalised before use, matching standard
practice for RBF benefits.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_generator, deterministic_partition
from repro.utils.validation import check_positive_int

#: Table 2 group mixes, in percent.
ADULT_GENDER_C2 = (34, 66)               # Female / Male
ADULT_RACE_C5 = (1, 3, 10, 85, 1)        # AmerIndian/AsianPac/Black/White/Other
ADULT_SMALL_RACE_C5 = (1, 2, 14, 82, 1)  # the 100-record sample's mix

#: Number of numeric features (Table 2: d = 6).
ADULT_DIM = 6


def adult_like_points(
    attribute: str = "gender",
    num_records: int = 1_000,
    *,
    seed: SeedLike = None,
    small_sample: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``(features, group_labels)`` Adult-like records.

    Parameters
    ----------
    attribute:
        ``"gender"`` (c = 2) or ``"race"`` (c = 5).
    small_sample:
        Use the Adult-Small race mix of Table 2 (only meaningful with
        ``attribute="race"`` and ``num_records=100``).
    """
    check_positive_int(num_records, "num_records")
    if attribute == "gender":
        percents = ADULT_GENDER_C2
    elif attribute == "race":
        percents = ADULT_SMALL_RACE_C5 if small_sample else ADULT_RACE_C5
    else:
        raise ValueError(f"attribute must be 'gender' or 'race', got {attribute!r}")
    rng = as_generator(seed)
    labels = deterministic_partition(num_records, list(percents))
    rng.shuffle(labels)
    c = int(labels.max()) + 1
    # Group-dependent means: each group's socioeconomic profile is shifted
    # along a random direction, producing the clustered structure that
    # makes maximin fairness bind on the real data.
    directions = rng.normal(size=(c, ADULT_DIM))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    shifts = directions * rng.uniform(0.8, 1.6, size=(c, 1))
    features = rng.normal(size=(num_records, ADULT_DIM)) + shifts[labels]
    # z-normalise, as the FL pipeline assumes comparable feature scales.
    features -= features.mean(axis=0)
    std = features.std(axis=0)
    std[std == 0] = 1.0
    features /= std
    return features, labels
