"""The paper's worked examples as reusable fixtures.

* :func:`figure1_instance` — the Figure-1 maximum-coverage instance used
  by Examples 3.1, 4.1 and 4.6 (4 items, 12 users, 2 groups, ``k = 2``).
* :func:`lemma32_instance` — the Lemma-3.2 inapproximability gadget, for
  any ``k >= 1`` and gap parameter ``alpha``.

Both are exercised heavily by the test suite: the paper states the exact
optimal solutions and objective values, giving us ground truth.
"""

from __future__ import annotations

import numpy as np

from repro.core.functions import PerUserObjective
from repro.problems.coverage import CoverageObjective


def figure1_instance() -> CoverageObjective:
    """Figure 1: items v1..v4 (ids 0..3), users u11..u19, u21..u23.

    User ids 0..8 form group 0 (``U1``, 9 users) and ids 9..11 group 1
    (``U2``, 3 users). Coverage sets (paper notation -> user ids):

    * ``S(v1) = {u11..u15}``        -> {0, 1, 2, 3, 4}
    * ``S(v2) = {u16..u19}``        -> {5, 6, 7, 8}
    * ``S(v3) = {u16, u19, u21}``   -> {5, 8, 9}
    * ``S(v4) = {u22, u23}``        -> {10, 11}

    Ground truths from Example 3.1 (k = 2): ``OPT_f = f({v1,v2}) = 0.75``;
    ``OPT_g = g({v1,v4}) = 5/9``; ``g({v1,v3}) = 1/3``.
    """
    sets = [
        np.array([0, 1, 2, 3, 4]),
        np.array([5, 6, 7, 8]),
        np.array([5, 8, 9]),
        np.array([10, 11]),
    ]
    groups = [0] * 9 + [1] * 3
    return CoverageObjective(sets, groups)


def lemma32_instance(
    k: int = 1, alpha: float = 0.1, users_per_copy: int = 10
) -> PerUserObjective:
    """The Lemma-3.2 gadget showing BSM is inapproximable.

    For each copy ``i in [k]`` there are two items ``v_{2i-1}, v_{2i}``
    (ids ``2i-2``, ``2i-1``) and ``m`` users; the first user of each copy
    is the sole member of group ``i-1`` and everyone else belongs to the
    shared group ``k``. Utilities per the paper:

    * first user: ``alpha*(m-1)/m`` if ``v_{2i-1}`` selected, else 0;
    * other users of copy ``i``: 1 if ``v_{2i}`` selected; else
      ``alpha*(m-1)/m`` if ``v_{2i-1}`` selected; else 0.

    Selecting all even items maximises ``f`` but yields ``g = 0``;
    selecting all odd items yields ``g = OPT_g`` but only ``alpha * OPT_f``
    utility. As ``alpha -> 0`` no ``(alpha, beta)``-approximation with
    constant factors exists.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not 0 < alpha <= 1:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if users_per_copy < 2:
        raise ValueError("users_per_copy must be at least 2")
    m = users_per_copy
    level = alpha * (m - 1) / m

    def utility(user: int, solution: frozenset[int]) -> float:
        copy, offset = divmod(user, m)
        v_odd = 2 * copy      # item id of v_{2i-1}
        v_even = 2 * copy + 1  # item id of v_{2i}
        if offset == 0:
            return level if v_odd in solution else 0.0
        if v_even in solution:
            return 1.0
        if v_odd in solution:
            return level
        return 0.0

    groups = []
    for copy in range(k):
        groups.append(copy)          # first user of copy i -> group i
        groups.extend([k] * (m - 1))  # the rest -> shared group k
    return PerUserObjective(2 * k, groups, utility)
