"""Dataset builders reproducing the paper's Tables 1 and 2.

Real datasets (Facebook, DBLP, Pokec, Adult, FourSquare) are unavailable
offline; each has a synthetic *-like* substitute matching the published
sizes, densities and group mixes (DESIGN.md §6). The RAND datasets are
faithful re-implementations of the paper's own synthetic generators.
"""

from repro.datasets.adult import adult_like_points
from repro.datasets.foursquare import foursquare_like
from repro.datasets.paper_example import figure1_instance, lemma32_instance
from repro.datasets.registry import DATASETS, load_dataset
from repro.datasets.serialize import load_dataset_dir, save_dataset
from repro.datasets.social import dblp_like, facebook_like, pokec_like
from repro.datasets.synthetic import rand_fl_points, rand_graph

__all__ = [
    "DATASETS",
    "load_dataset_dir",
    "save_dataset",
    "adult_like_points",
    "dblp_like",
    "facebook_like",
    "figure1_instance",
    "foursquare_like",
    "lemma32_instance",
    "load_dataset",
    "pokec_like",
    "rand_fl_points",
    "rand_graph",
]
