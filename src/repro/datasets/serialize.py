"""Persist and reload constructed datasets.

The generators in this package are deterministic given a seed, but
downstream users comparing against this reproduction need *the exact
instance bytes*, not a recipe: a different numpy version can change
generator output. This module writes a :class:`repro.datasets.registry.
Dataset` to a directory of portable artifacts (``.npz`` arrays + an
edge list + a small JSON manifest) and rebuilds an equivalent dataset
from them.

Coverage/influence datasets persist the graph (edges, probabilities,
groups); facility/recommendation datasets persist their matrices;
summarization persists points. The manifest records the kind, name and
metadata so :func:`load_dataset_dir` can dispatch without guessing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.datasets.registry import Dataset
from repro.graphs.graph import Graph

#: Manifest schema version (bump on breaking layout changes).
FORMAT_VERSION = 1

PathLike = Union[str, Path]


def _graph_arrays(graph: Graph) -> dict[str, np.ndarray]:
    sources, targets, probs = [], [], []
    for u, v, p in graph.edges():
        # Undirected graphs store both arcs; persist each input edge once
        # (self-loops appear once already).
        if not graph.directed and v < u:
            continue
        sources.append(u)
        targets.append(v)
        probs.append(p)
    return {
        "edge_sources": np.asarray(sources, dtype=np.int64),
        "edge_targets": np.asarray(targets, dtype=np.int64),
        "edge_probs": np.asarray(probs, dtype=float),
        "groups": graph.groups,
    }


def _graph_from_arrays(
    arrays: "np.lib.npyio.NpzFile", num_nodes: int, directed: bool
) -> Graph:
    graph = Graph(
        num_nodes, directed=directed, groups=arrays["groups"].tolist()
    )
    for u, v, p in zip(
        arrays["edge_sources"], arrays["edge_targets"], arrays["edge_probs"]
    ):
        graph.add_edge(int(u), int(v), probability=float(p))
    return graph


def save_dataset(dataset: Dataset, directory: PathLike) -> Path:
    """Write a dataset to ``directory`` (created if missing).

    Returns the manifest path. Raises for dataset kinds that carry
    neither a graph nor a reconstructible objective.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    manifest: dict[str, object] = {
        "format": FORMAT_VERSION,
        "name": dataset.name,
        "kind": dataset.kind,
        "meta": {k: v for k, v in dataset.meta.items()
                 if isinstance(v, (str, int, float, bool, list))},
    }
    arrays: dict[str, np.ndarray] = {}
    if dataset.graph is not None:
        arrays.update(_graph_arrays(dataset.graph))
        manifest["num_nodes"] = dataset.graph.num_nodes
        manifest["directed"] = dataset.graph.directed
    if dataset.kind == "facility":
        arrays["benefits"] = dataset.objective.benefits
        arrays["user_groups"] = dataset.objective.user_groups
    elif dataset.kind == "recommendation":
        arrays["relevance"] = dataset.objective.relevance
        arrays["user_groups"] = dataset.objective.user_groups
    elif dataset.kind == "summarization":
        arrays["points"] = dataset.objective._points
        arrays["user_groups"] = dataset.objective.user_groups
    elif dataset.graph is None:
        raise ValueError(
            f"cannot serialize dataset kind {dataset.kind!r} without a graph"
        )
    np.savez_compressed(target / "arrays.npz", **arrays)
    manifest_path = target / "manifest.json"
    manifest_path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8"
    )
    return manifest_path


def load_dataset_dir(directory: PathLike) -> Dataset:
    """Rebuild a dataset previously written by :func:`save_dataset`."""
    source = Path(directory)
    manifest = json.loads(
        (source / "manifest.json").read_text(encoding="utf-8")
    )
    if manifest.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported dataset format {manifest.get('format')!r}; "
            f"expected {FORMAT_VERSION}"
        )
    arrays = np.load(source / "arrays.npz")
    kind = manifest["kind"]
    graph = None
    if "edge_sources" in arrays:
        graph = _graph_from_arrays(
            arrays, int(manifest["num_nodes"]), bool(manifest["directed"])
        )
    objective = None
    if kind == "coverage":
        from repro.problems.coverage import CoverageObjective

        objective = CoverageObjective.from_graph(graph)
    elif kind == "influence":
        objective = None  # built lazily from the graph, as in the registry
    elif kind == "facility":
        from repro.problems.facility import FacilityLocationObjective

        objective = FacilityLocationObjective(
            arrays["benefits"], arrays["user_groups"].tolist()
        )
    elif kind == "recommendation":
        from repro.problems.recommendation import RecommendationObjective

        objective = RecommendationObjective(
            arrays["relevance"], arrays["user_groups"].tolist()
        )
    elif kind == "summarization":
        from repro.problems.summarization import SummarizationObjective

        objective = SummarizationObjective(
            arrays["points"], arrays["user_groups"].tolist()
        )
    else:
        raise ValueError(f"unknown dataset kind {kind!r} in manifest")
    return Dataset(
        name=str(manifest["name"]),
        kind=kind,
        objective=objective,
        graph=graph,
        meta=dict(manifest.get("meta", {})),
    )
