"""FourSquare-like spatial check-in data (Table 2 substitute).

The paper extracts medical-centre locations as facilities and samples
1,000 distinct check-in locations as users from the FourSquare NYC / TKY
check-ins, treating *every user as a singleton group* (c = 1,000). The
structural essentials — 2-d points, a few hundred facilities clustered in
urban sub-centres, one group per user — are what stress the solvers, so
the substitute generates anisotropic city-like clusters (denser downtown,
sparser periphery) with facility counts matching Table 2 (NYC: 882
facilities, TKY: 1,132).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int

#: Table 2 facility counts.
NYC_FACILITIES = 882
TKY_FACILITIES = 1_132
DEFAULT_USERS = 1_000

#: City shapes: (number of urban sub-centres, anisotropy of the sprawl).
_CITY_SHAPES = {
    "nyc": {"centers": 5, "stretch": (1.0, 2.2)},   # elongated (Manhattan)
    "tky": {"centers": 8, "stretch": (1.6, 1.6)},   # sprawling, multi-core
}


def foursquare_like(
    city: str = "nyc",
    *,
    num_users: int = DEFAULT_USERS,
    num_facilities: int | None = None,
    seed: SeedLike = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate ``(user_points, facility_points, group_labels)``.

    ``group_labels`` is simply ``0..num_users-1`` — each user its own
    group, reproducing the paper's c = 1,000 setting.
    """
    key = city.lower()
    if key not in _CITY_SHAPES:
        raise ValueError(f"city must be one of {sorted(_CITY_SHAPES)}, got {city!r}")
    check_positive_int(num_users, "num_users")
    if num_facilities is None:
        num_facilities = NYC_FACILITIES if key == "nyc" else TKY_FACILITIES
    check_positive_int(num_facilities, "num_facilities")
    rng = as_generator(seed)
    shape = _CITY_SHAPES[key]
    n_centers = shape["centers"]
    stretch = np.asarray(shape["stretch"])
    centers = rng.uniform(-4.0, 4.0, size=(n_centers, 2)) * stretch
    # Population density decays with sub-centre index (downtown first).
    weights = 1.0 / np.arange(1, n_centers + 1)
    weights /= weights.sum()

    def _sample(count: int, scale: float) -> np.ndarray:
        assignment = rng.choice(n_centers, size=count, p=weights)
        return centers[assignment] + rng.normal(
            scale=scale, size=(count, 2)
        ) * stretch

    user_points = _sample(num_users, scale=0.9)
    # Facilities (medical centres) concentrate a bit tighter than users.
    facility_points = _sample(num_facilities, scale=0.6)
    group_labels = np.arange(num_users, dtype=np.int64)
    return user_points, facility_points, group_labels
