"""Synthetic substitutes for the paper's real social graphs (Table 1).

The real Facebook (Rice), DBLP and Pokec graphs are not redistributable
offline. Each builder below matches the published node count, target edge
count and exact group mix, and reproduces the structural property the
experiments depend on (DESIGN.md §6):

* ``facebook_like`` — dense homophilous friendship graph (avg degree ~70);
* ``dblp_like`` — sparse clustered co-authorship graph (avg degree ~3.5);
* ``pokec_like`` — directed heavy-tailed follower graph. The real Pokec
  has 1.6M nodes / 30.6M arcs; the default here scales to 50k nodes with
  the same density (~19 arcs/node) so that the scalability *trend* of
  Figures 4/6 is measurable on a laptop. Pass ``num_nodes`` to change.
"""

from __future__ import annotations

from repro.graphs.generators import preferential_attachment, random_groups_graph
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, as_generator, deterministic_partition
from repro.utils.validation import check_positive_int

#: Table 1 group mixes, in percent.
FACEBOOK_AGE_C2 = (8, 92)             # age < 20 vs >= 20
FACEBOOK_AGE_C4 = (8, 28, 31, 33)      # age 19 / 20 / 21 / 22
DBLP_CONTINENT_C5 = (21, 23, 52, 3, 1)  # Asia/Europe/N.America/Oceania/S.America
POKEC_GENDER_C2 = (51, 49)
POKEC_AGE_C6 = (17, 45, 29, 6, 2, 1)

#: Table 1 sizes.
FACEBOOK_NODES = 1_216
FACEBOOK_EDGES = 42_443
DBLP_NODES = 3_980
DBLP_EDGES = 6_966


def facebook_like(
    num_groups: int = 2,
    *,
    seed: SeedLike = None,
    num_nodes: int = FACEBOOK_NODES,
) -> Graph:
    """Facebook-like friendship graph (Age attribute, c = 2 or 4)."""
    if num_groups == 2:
        percents = FACEBOOK_AGE_C2
    elif num_groups == 4:
        percents = FACEBOOK_AGE_C4
    else:
        raise ValueError(f"Facebook groups are c=2 or c=4, got {num_groups}")
    check_positive_int(num_nodes, "num_nodes")
    avg_degree = 2.0 * FACEBOOK_EDGES / FACEBOOK_NODES  # ~69.8
    return random_groups_graph(
        num_nodes,
        avg_degree,
        percents,
        seed=seed,
        directed=False,
        homophily=3.0,  # campus friendships skew within age cohorts
    )


def dblp_like(
    *,
    seed: SeedLike = None,
    num_nodes: int = DBLP_NODES,
) -> Graph:
    """DBLP-like co-authorship graph (Continent attribute, c = 5)."""
    check_positive_int(num_nodes, "num_nodes")
    avg_degree = 2.0 * DBLP_EDGES / DBLP_NODES  # ~3.5
    return random_groups_graph(
        num_nodes,
        avg_degree,
        DBLP_CONTINENT_C5,
        seed=seed,
        directed=False,
        homophily=5.0,  # collaborations cluster strongly by region
    )


def pokec_like(
    attribute: str = "gender",
    *,
    seed: SeedLike = None,
    num_nodes: int = 50_000,
) -> Graph:
    """Pokec-like directed follower graph (gender c=2 or age c=6).

    Heavy-tailed out-degrees via preferential attachment, then group
    labels assigned to match the Table-1 mixes (the gender split is nearly
    uniform, so labels and structure are independent, as in Pokec itself).
    """
    if attribute == "gender":
        percents = POKEC_GENDER_C2
    elif attribute == "age":
        percents = POKEC_AGE_C6
    else:
        raise ValueError(
            f"attribute must be 'gender' or 'age', got {attribute!r}"
        )
    check_positive_int(num_nodes, "num_nodes")
    rng = as_generator(seed)
    # Real Pokec density: 30.6M arcs / 1.63M nodes ~ 18.8 arcs per node.
    arcs_per_node = 9  # undirected PA edges stored as 2 arcs each -> ~18.8
    base = preferential_attachment(
        num_nodes, arcs_per_node, seed=rng, directed=False
    )
    graph = Graph(num_nodes, directed=True)
    for u, v, p in base.edges():
        graph.add_edge(u, v, probability=p)  # both arcs, follower-style
    labels = deterministic_partition(num_nodes, list(percents))
    rng.shuffle(labels)
    graph.set_groups(labels)
    return graph
