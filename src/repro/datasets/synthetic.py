"""The paper's own synthetic datasets.

* RAND graphs for MC / IM (Table 1): stochastic block models with
  ``p_intra = 0.1``, ``p_inter = 0.02``; 500 nodes for MC, 100 for IM;
  group mixes ``[20, 80]`` (c=2) and ``[8, 12, 20, 60]`` (c=4).
* RAND points for FL (Table 2): 100 points in 5 dimensions, one isotropic
  Gaussian blob per group; mixes ``[15, 85]`` (c=2), ``[5, 20, 75]`` (c=3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graphs.generators import gaussian_points, stochastic_block_model
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike
from repro.utils.validation import check_positive_int

#: Paper's SBM connection probabilities (Section 5.1).
RAND_P_INTRA = 0.1
RAND_P_INTER = 0.02

#: Paper's group mixes (Tables 1 and 2), in percent.
RAND_MC_GROUPS = {2: (20, 80), 4: (8, 12, 20, 60)}
RAND_FL_GROUPS = {2: (15, 85), 3: (5, 20, 75)}


def rand_graph(
    num_groups: int = 2,
    num_nodes: int = 500,
    *,
    seed: SeedLike = None,
    p_intra: float = RAND_P_INTRA,
    p_inter: float = RAND_P_INTER,
) -> Graph:
    """RAND graph of Table 1 (``num_nodes=500`` for MC, 100 for IM)."""
    check_positive_int(num_nodes, "num_nodes")
    if num_groups not in RAND_MC_GROUPS:
        raise ValueError(
            f"RAND graphs are defined for c in {sorted(RAND_MC_GROUPS)}, "
            f"got {num_groups}"
        )
    percents = RAND_MC_GROUPS[num_groups]
    sizes = _sizes_from_percents(num_nodes, percents)
    return stochastic_block_model(sizes, p_intra, p_inter, seed=seed)


def rand_fl_points(
    num_groups: int = 2,
    num_points: int = 100,
    *,
    dim: int = 5,
    seed: SeedLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """RAND FL dataset of Table 2: ``(points, group_labels)``."""
    check_positive_int(num_points, "num_points")
    if num_groups not in RAND_FL_GROUPS:
        raise ValueError(
            f"RAND FL datasets are defined for c in {sorted(RAND_FL_GROUPS)}, "
            f"got {num_groups}"
        )
    percents = RAND_FL_GROUPS[num_groups]
    sizes = _sizes_from_percents(num_points, percents)
    return gaussian_points(sizes, dim=dim, scale=1.0, spread=3.0, seed=seed)


def _sizes_from_percents(total: int, percents: Sequence[float]) -> list[int]:
    """Exact group sizes from percentage mixes (largest-remainder)."""
    from repro.utils.rng import deterministic_partition

    labels = deterministic_partition(total, list(percents))
    counts = np.bincount(labels, minlength=len(list(percents)))
    return [int(c) for c in counts]
