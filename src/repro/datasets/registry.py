"""Named dataset registry used by the benchmark harness.

Each entry builds the exact workload of one experimental configuration of
the paper (Tables 1–2). ``load_dataset(name, seed=...)`` returns a
:class:`Dataset` whose payload depends on the problem family:

* coverage (``kind='coverage'``): a ready :class:`CoverageObjective` plus
  the underlying graph;
* influence (``kind='influence'``): the graph (objectives are built per
  run, since RR sampling depends on the experiment's sample budget);
* facility (``kind='facility'``): a ready
  :class:`FacilityLocationObjective` plus the raw points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.datasets.adult import adult_like_points
from repro.datasets.foursquare import foursquare_like
from repro.datasets.social import dblp_like, facebook_like, pokec_like
from repro.datasets.synthetic import rand_fl_points, rand_graph
from repro.graphs.graph import Graph
from repro.problems.coverage import CoverageObjective
from repro.problems.facility import (
    FacilityLocationObjective,
    kmedian_benefits,
    rbf_benefits,
)
from repro.utils.rng import SeedLike


@dataclass
class Dataset:
    """A constructed workload."""

    name: str
    kind: str  # 'coverage' | 'influence' | 'facility'
    objective: Optional[Any] = None
    graph: Optional[Graph] = None
    meta: dict[str, Any] = field(default_factory=dict)


def _coverage_from_graph(name: str, graph: Graph, **meta: Any) -> Dataset:
    return Dataset(
        name=name,
        kind="coverage",
        objective=CoverageObjective.from_graph(graph),
        graph=graph,
        meta=meta,
    )


def _facility_from_points(
    name: str,
    user_points: np.ndarray,
    facility_points: np.ndarray,
    labels: np.ndarray,
    benefit: str,
    **meta: Any,
) -> Dataset:
    if benefit == "rbf":
        matrix = rbf_benefits(user_points, facility_points)
    elif benefit == "kmedian":
        matrix = kmedian_benefits(user_points, facility_points)
    else:
        raise ValueError(f"unknown benefit kind {benefit!r}")
    return Dataset(
        name=name,
        kind="facility",
        objective=FacilityLocationObjective(matrix, labels),
        meta={"benefit": benefit, **meta},
    )


# -- builders -----------------------------------------------------------
def _build_rand_mc(c: int) -> Callable[[SeedLike], Dataset]:
    def build(seed: SeedLike = 0, *, num_nodes: int = 500) -> Dataset:
        graph = rand_graph(c, num_nodes, seed=seed)
        return _coverage_from_graph(f"rand-mc-c{c}", graph, c=c)

    return build


def _build_rand_im(c: int) -> Callable[[SeedLike], Dataset]:
    def build(
        seed: SeedLike = 0, *, num_nodes: int = 100, edge_probability: float = 0.1
    ) -> Dataset:
        graph = rand_graph(c, num_nodes, seed=seed)
        graph.set_edge_probabilities(edge_probability)
        return Dataset(
            name=f"rand-im-c{c}",
            kind="influence",
            graph=graph,
            meta={"c": c, "edge_probability": edge_probability},
        )

    return build


def _build_facebook(kind: str, c: int) -> Callable[[SeedLike], Dataset]:
    def build(
        seed: SeedLike = 0,
        *,
        edge_probability: float = 0.01,
        num_nodes: int = 1_216,
    ) -> Dataset:
        graph = facebook_like(c, seed=seed, num_nodes=num_nodes)
        if kind == "coverage":
            return _coverage_from_graph(f"facebook-mc-c{c}", graph, c=c)
        graph.set_edge_probabilities(edge_probability)
        return Dataset(
            name=f"facebook-im-c{c}",
            kind="influence",
            graph=graph,
            meta={"c": c, "edge_probability": edge_probability},
        )

    return build


def _build_dblp(kind: str) -> Callable[[SeedLike], Dataset]:
    def build(
        seed: SeedLike = 0,
        *,
        edge_probability: float = 0.1,
        num_nodes: int = 3_980,
    ) -> Dataset:
        graph = dblp_like(seed=seed, num_nodes=num_nodes)
        if kind == "coverage":
            return _coverage_from_graph("dblp-mc", graph, c=5)
        graph.set_edge_probabilities(edge_probability)
        return Dataset(
            name="dblp-im",
            kind="influence",
            graph=graph,
            meta={"c": 5, "edge_probability": edge_probability},
        )

    return build


def _build_pokec(kind: str, attribute: str) -> Callable[[SeedLike], Dataset]:
    def build(
        seed: SeedLike = 0,
        *,
        num_nodes: int = 50_000,
        edge_probability: float = 0.01,
    ) -> Dataset:
        graph = pokec_like(attribute, seed=seed, num_nodes=num_nodes)
        if kind == "coverage":
            return _coverage_from_graph(
                f"pokec-mc-{attribute}", graph, attribute=attribute
            )
        graph.set_edge_probabilities(edge_probability)
        return Dataset(
            name=f"pokec-im-{attribute}",
            kind="influence",
            graph=graph,
            meta={"attribute": attribute, "edge_probability": edge_probability},
        )

    return build


def _build_rand_fl(c: int) -> Callable[[SeedLike], Dataset]:
    def build(seed: SeedLike = 0, *, num_points: int = 100) -> Dataset:
        points, labels = rand_fl_points(c, num_points, seed=seed)
        return _facility_from_points(
            f"rand-fl-c{c}", points, points, labels, benefit="rbf", c=c
        )

    return build


def _build_adult(attribute: str, size: int, small: bool) -> Callable[[SeedLike], Dataset]:
    def build(seed: SeedLike = 0, *, num_records: Optional[int] = None) -> Dataset:
        points, labels = adult_like_points(
            attribute, num_records or size, seed=seed, small_sample=small
        )
        name = "adult-small" if small else f"adult-{attribute}"
        return _facility_from_points(
            name, points, points, labels, benefit="rbf", attribute=attribute
        )

    return build


def _build_foursquare(city: str) -> Callable[[SeedLike], Dataset]:
    def build(seed: SeedLike = 0) -> Dataset:
        users, facilities, labels = foursquare_like(city, seed=seed)
        return _facility_from_points(
            f"foursquare-{city}", users, facilities, labels,
            benefit="kmedian", city=city,
        )

    return build


def _build_recommendation(c: int) -> Callable[..., Dataset]:
    def build(
        seed: SeedLike = 0,
        *,
        num_users: int = 300,
        num_items: int = 120,
    ) -> Dataset:
        from repro.problems.recommendation import (
            RecommendationObjective,
            latent_relevance,
        )
        from repro.utils.rng import deterministic_partition

        proportions = [1.0 / c] * c
        labels = deterministic_partition(num_users, proportions)
        relevance = latent_relevance(
            num_users, num_items, group_labels=labels, seed=seed
        )
        return Dataset(
            name=f"rec-latent-c{c}",
            kind="recommendation",
            objective=RecommendationObjective(relevance, labels),
            meta={"num_users": num_users, "num_items": num_items, "c": c},
        )

    return build


def _build_summarization(c: int) -> Callable[..., Dataset]:
    def build(
        seed: SeedLike = 0,
        *,
        num_points: int = 200,
        dim: int = 5,
    ) -> Dataset:
        from repro.graphs.generators import gaussian_points
        from repro.problems.summarization import SummarizationObjective

        base, rem = divmod(num_points, c)
        counts = [base + (1 if i < rem else 0) for i in range(c)]
        points, labels = gaussian_points(counts, dim=dim, seed=seed)
        return Dataset(
            name=f"summ-blobs-c{c}",
            kind="summarization",
            objective=SummarizationObjective(points, labels),
            meta={"num_points": num_points, "dim": dim, "c": c},
        )

    return build


#: name -> builder(seed, **overrides) -> Dataset
DATASETS: dict[str, Callable[..., Dataset]] = {
    # Table 1 (MC / IM)
    "rand-mc-c2": _build_rand_mc(2),
    "rand-mc-c4": _build_rand_mc(4),
    "rand-im-c2": _build_rand_im(2),
    "rand-im-c4": _build_rand_im(4),
    "facebook-mc-c2": _build_facebook("coverage", 2),
    "facebook-mc-c4": _build_facebook("coverage", 4),
    "facebook-im-c2": _build_facebook("influence", 2),
    "facebook-im-c4": _build_facebook("influence", 4),
    "dblp-mc": _build_dblp("coverage"),
    "dblp-im": _build_dblp("influence"),
    "pokec-mc-gender": _build_pokec("coverage", "gender"),
    "pokec-mc-age": _build_pokec("coverage", "age"),
    "pokec-im-gender": _build_pokec("influence", "gender"),
    "pokec-im-age": _build_pokec("influence", "age"),
    # Table 2 (FL)
    "rand-fl-c2": _build_rand_fl(2),
    "rand-fl-c3": _build_rand_fl(3),
    "adult-small": _build_adult("race", 100, True),
    "adult-gender": _build_adult("gender", 1_000, False),
    "adult-race": _build_adult("race", 1_000, False),
    "foursquare-nyc": _build_foursquare("nyc"),
    "foursquare-tky": _build_foursquare("tky"),
    # Extension domains (intro applications beyond the evaluation)
    "rec-latent-c2": _build_recommendation(2),
    "rec-latent-c3": _build_recommendation(3),
    "summ-blobs-c2": _build_summarization(2),
    "summ-blobs-c3": _build_summarization(3),
}


def load_dataset(name: str, seed: SeedLike = 0, **overrides: Any) -> Dataset:
    """Build the named dataset (see :data:`DATASETS` for the catalogue)."""
    if name not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    return DATASETS[name](seed, **overrides)
