"""Structural statistics for grouped graphs.

Table 1 of the paper characterises each dataset by size and group mix;
because every real graph here is replaced by a synthetic substitute
(DESIGN.md §6), these metrics are how the substitution is *validated*:
the substitute must match the original's node/edge counts and group
proportions, and preserve the structural features that drive MC/IM
behaviour (degree spread, clustering, group homophily).

All metrics are exact, dependency-free, and linear-or-near-linear in the
graph size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph


@dataclass(frozen=True)
class GraphStatistics:
    """One row of a Table-1-style dataset summary."""

    num_nodes: int
    num_edges: int
    num_groups: int
    group_fractions: tuple[float, ...]
    mean_out_degree: float
    max_out_degree: int
    degree_gini: float
    clustering: float
    homophily: float

    def render(self) -> str:
        """Human-readable one-liner for reports."""
        groups = ", ".join(f"{p:.0%}" for p in self.group_fractions)
        return (
            f"n={self.num_nodes} |E|={self.num_edges} c={self.num_groups} "
            f"[{groups}] deg={self.mean_out_degree:.1f}"
            f"(max {self.max_out_degree}, gini {self.degree_gini:.2f}) "
            f"cc={self.clustering:.3f} homophily={self.homophily:+.3f}"
        )


def degree_sequence(graph: Graph) -> np.ndarray:
    """Out-degrees of all nodes."""
    indptr, _, _ = graph.out_adjacency()
    return np.diff(indptr)


def gini_coefficient(values: np.ndarray) -> float:
    """Gini index of a non-negative sequence (0 = uniform, ->1 = skewed).

    Used on the degree sequence: power-law substitutes (Pokec-like) must
    show a much higher Gini than the SBM RAND graphs.
    """
    data = np.sort(np.asarray(values, dtype=float))
    if data.size == 0:
        raise ValueError("need at least one value")
    if np.any(data < 0):
        raise ValueError("values must be non-negative")
    total = data.sum()
    if total == 0:
        return 0.0
    ranks = np.arange(1, data.size + 1)
    return float(
        (2.0 * (ranks * data).sum() / (data.size * total))
        - (data.size + 1.0) / data.size
    )


def global_clustering(graph: Graph) -> float:
    """Transitivity: 3 * triangles / connected triples (undirected view).

    Directed arcs are symmetrised first; isolated nodes contribute
    nothing. Returns 0 for triangle-free graphs.
    """
    n = graph.num_nodes
    neighbors: list[set[int]] = [set() for _ in range(n)]
    for u, v, _ in graph.edges():
        if u != v:
            neighbors[u].add(v)
            neighbors[v].add(u)
    triangles = 0
    triples = 0
    for u in range(n):
        deg = len(neighbors[u])
        triples += deg * (deg - 1) // 2
        for v in neighbors[u]:
            if v > u:
                common = neighbors[u] & neighbors[v]
                triangles += sum(1 for w in common if w > v)
    if triples == 0:
        return 0.0
    return 3.0 * triangles / triples


def group_homophily(graph: Graph) -> float:
    """Newman assortativity of the group labels over edges.

    +1 means edges stay within groups (the SBM regime with
    ``p_intra >> p_inter``), 0 means group-blind wiring, negative means
    disassortative. The fairness experiments are only interesting when
    homophily is positive — otherwise every solution spreads evenly.
    """
    labels = graph.groups
    c = graph.num_groups
    mixing = np.zeros((c, c), dtype=float)
    for u, v, _ in graph.edges():
        mixing[labels[u], labels[v]] += 1.0
        mixing[labels[v], labels[u]] += 1.0
    total = mixing.sum()
    if total == 0:
        return 0.0
    mixing /= total
    a = mixing.sum(axis=1)
    trace = float(np.trace(mixing))
    expected = float(a @ a)
    if expected >= 1.0:
        return 0.0  # single group: assortativity undefined, call it 0
    return (trace - expected) / (1.0 - expected)


def graph_statistics(graph: Graph) -> GraphStatistics:
    """Compute the full Table-1-style summary of a grouped graph."""
    degrees = degree_sequence(graph)
    sizes = graph.group_sizes().astype(float)
    return GraphStatistics(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_groups=graph.num_groups,
        group_fractions=tuple(sizes / sizes.sum()),
        mean_out_degree=float(degrees.mean()) if degrees.size else 0.0,
        max_out_degree=int(degrees.max()) if degrees.size else 0,
        degree_gini=gini_coefficient(degrees),
        clustering=global_clustering(graph),
        homophily=group_homophily(graph),
    )
