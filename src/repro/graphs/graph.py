"""A compact directed/undirected graph with per-node group labels.

Nodes are the integers ``0..n-1``. Edges may carry a propagation
probability (used by the independent-cascade model); unweighted graphs get
probability 1.0 on every edge. Undirected graphs are stored as two directed
arcs so that the influence and coverage code paths are identical for both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GroupPartitionError, StorageError
from repro.utils.csr import invert_csr
from repro.utils.validation import check_positive_int

EdgeLike = Tuple[int, int]
WeightedEdgeLike = Tuple[int, int, float]

#: Arc records the mutation log keeps before it gives up. Dynamic
#: workloads mutate a handful of arcs per event, so the log stays tiny;
#: a whole-graph rewrite (``set_edge_probabilities``) would blow through
#: any cap and is floored instead (see :meth:`Graph.mutations_since`).
MUTATION_LOG_LIMIT = 65_536


@dataclass(frozen=True)
class GraphDelta:
    """Arc-level changes between two graph versions.

    Parallel arrays, one entry per changed *stored arc* (an undirected
    edge mutation contributes both directions): arc ``sources[i] ->
    targets[i]`` moved from probability ``old_probabilities[i]`` to
    ``new_probabilities[i]``. A freshly added arc records ``old = 0.0``
    — absent and never-live are the same event under the IC model.
    """

    sources: np.ndarray
    targets: np.ndarray
    old_probabilities: np.ndarray
    new_probabilities: np.ndarray

    @property
    def num_arcs(self) -> int:
        return int(self.sources.size)


class Graph:
    """Adjacency-list graph over nodes ``0..n-1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes; nodes are implicit integers.
    edges:
        Iterable of ``(u, v)`` or ``(u, v, p)`` tuples. For undirected
        graphs each input edge creates both arcs.
    directed:
        Whether edges are one-way arcs.
    groups:
        Optional per-node group labels in ``[0, c)``; required by the
        fairness objectives. May be attached later via :meth:`set_groups`.
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[EdgeLike | WeightedEdgeLike] = (),
        *,
        directed: bool = False,
        groups: Optional[Sequence[int]] = None,
    ) -> None:
        self.num_nodes = check_positive_int(num_nodes, "num_nodes")
        self.directed = bool(directed)
        self._succ: list[list[int]] = [[] for _ in range(self.num_nodes)]
        self._succ_p: list[list[float]] = [[] for _ in range(self.num_nodes)]
        self._num_input_edges = 0
        self._groups: Optional[np.ndarray] = None
        self._num_groups = 0
        self._csr_cache: Optional[tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._transpose_cache: Optional[
            tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = None
        self._version = 0
        # Arc-level mutation records ``(version, u, v, old_p, new_p)``.
        # ``_log_floor`` is the oldest version the log can still replay
        # from; whole-graph rewrites raise it past the current version so
        # consumers fall back to a full rebuild (see mutations_since).
        self._mutation_log: list[tuple[int, int, int, float, float]] = []
        self._log_floor = 0
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                self.add_edge(int(u), int(v))
            else:
                u, v, p = edge  # type: ignore[misc]
                self.add_edge(int(u), int(v), probability=float(p))
        if groups is not None:
            self.set_groups(groups)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, *, probability: float = 1.0) -> None:
        """Add edge ``u -> v`` (and ``v -> u`` when undirected)."""
        self._check_node(u)
        self._check_node(v)
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"edge probability must be in [0, 1], got {probability}")
        self._succ[u].append(v)
        self._succ_p[u].append(probability)
        if not self.directed and u != v:
            self._succ[v].append(u)
            self._succ_p[v].append(probability)
        self._num_input_edges += 1
        self._csr_cache = None
        self._transpose_cache = None
        self._version += 1
        # A new arc is a probability move from 0 (never live) to p.
        self._record_mutation(u, v, 0.0, probability)
        if not self.directed and u != v:
            self._record_mutation(v, u, 0.0, probability)

    def set_groups(self, groups: Sequence[int]) -> None:
        """Attach group labels; labels must be ``0..c-1`` with no empty group."""
        arr = np.asarray(groups, dtype=np.int64)
        if arr.shape != (self.num_nodes,):
            raise GroupPartitionError(
                f"groups must have length {self.num_nodes}, got {arr.shape}"
            )
        if arr.size and arr.min() < 0:
            raise GroupPartitionError("group labels must be non-negative")
        c = int(arr.max()) + 1 if arr.size else 0
        present = np.bincount(arr, minlength=c)
        if np.any(present == 0):
            missing = np.flatnonzero(present == 0).tolist()
            raise GroupPartitionError(f"empty group label(s): {missing}")
        self._groups = arr
        self._num_groups = c

    def set_edge_probabilities(self, probability: float) -> None:
        """Overwrite every arc's propagation probability with a constant.

        The paper's IM experiments use uniform ``p = 0.1`` or ``p = 0.01``.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        for plist in self._succ_p:
            for i in range(len(plist)):
                plist[i] = probability
        self._csr_cache = None
        self._transpose_cache = None
        self._version += 1
        # A whole-graph rewrite touches every arc: logging it would make
        # the "repair" as expensive as a rebuild, so floor the log instead
        # and let mutations_since() report the delta as unreplayable.
        self._mutation_log.clear()
        self._log_floor = self._version

    def set_arc_probability(self, u: int, v: int, probability: float) -> None:
        """Update the probability of the existing arc ``u -> v``.

        For undirected graphs the mirror arc ``v -> u`` is updated too.
        Raises :class:`KeyError` if the arc is absent — use
        :meth:`add_edge` to create new arcs. Parallel arcs (the graph
        permits duplicates) are all updated.
        """
        self._check_node(u)
        self._check_node(v)
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if all(w != v for w in self._succ[u]):
            raise KeyError(f"arc {u} -> {v} not present")
        # Bump before recording so the log entries carry the version the
        # mutation *creates* (matching add_edge, where consumers replay
        # "everything after version X").
        self._version += 1
        self._set_one_arc(u, v, probability)
        if not self.directed and u != v:
            self._set_one_arc(v, u, probability)
        self._csr_cache = None
        self._transpose_cache = None

    def _set_one_arc(self, u: int, v: int, probability: float) -> None:
        hits = [i for i, w in enumerate(self._succ[u]) if w == v]
        if not hits:
            raise KeyError(f"arc {u} -> {v} not present")
        for i in hits:
            old = self._succ_p[u][i]
            self._succ_p[u][i] = probability
            self._record_mutation(u, v, old, probability)

    def _record_mutation(self, u: int, v: int, old_p: float, new_p: float) -> None:
        self._mutation_log.append((self._version, u, v, old_p, new_p))
        if len(self._mutation_log) > MUTATION_LOG_LIMIT:
            self._mutation_log.clear()
            self._log_floor = self._version

    def mutations_since(self, version: int) -> Optional[GraphDelta]:
        """Arc deltas between ``version`` and the current version.

        Returns ``None`` when the log cannot replay from ``version`` —
        either the graph was rewritten wholesale
        (:meth:`set_edge_probabilities`), the log overflowed
        ``MUTATION_LOG_LIMIT``, or ``version`` predates this object —
        in which case the caller must rebuild from scratch. Successive
        mutations of the same arc are collapsed to one record carrying
        the oldest ``old_p`` and the newest ``new_p``; arcs whose
        probability ends where it started are dropped entirely.
        """
        if version > self._version:
            raise ValueError(
                f"version {version} is ahead of graph version {self._version}"
            )
        if version < self._log_floor:
            return None
        first: dict[tuple[int, int], float] = {}
        last: dict[tuple[int, int], float] = {}
        for ver, u, v, old_p, new_p in self._mutation_log:
            if ver <= version:
                continue
            key = (u, v)
            if key not in first:
                first[key] = old_p
            last[key] = new_p
        changed = [
            (u, v, first[u, v], last[u, v])
            for (u, v) in first
            if first[u, v] != last[u, v]
        ]
        if not changed:
            return GraphDelta(
                sources=np.empty(0, dtype=np.int64),
                targets=np.empty(0, dtype=np.int64),
                old_probabilities=np.empty(0, dtype=np.float64),
                new_probabilities=np.empty(0, dtype=np.float64),
            )
        srcs, tgts, olds, news = zip(*changed)
        return GraphDelta(
            sources=np.asarray(srcs, dtype=np.int64),
            targets=np.asarray(tgts, dtype=np.int64),
            old_probabilities=np.asarray(olds, dtype=np.float64),
            new_probabilities=np.asarray(news, dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of input edges (arcs if directed, undirected edges otherwise)."""
        return self._num_input_edges

    @property
    def num_arcs(self) -> int:
        """Number of stored directed arcs (2x input edges when undirected)."""
        return sum(len(lst) for lst in self._succ)

    @property
    def version(self) -> int:
        """Mutation counter, bumped by every structural or weight change.

        External caches keyed by graph identity (e.g. the experiment
        harness's sampled-collection cache) include this so an in-place
        ``add_edge``/``set_edge_probabilities`` invalidates their entries
        the same way it invalidates the graph's own CSR caches.
        """
        return self._version

    @property
    def groups(self) -> np.ndarray:
        if self._groups is None:
            raise GroupPartitionError("graph has no group labels attached")
        return self._groups

    @property
    def has_groups(self) -> bool:
        return self._groups is not None

    @property
    def num_groups(self) -> int:
        if self._groups is None:
            raise GroupPartitionError("graph has no group labels attached")
        return self._num_groups

    def group_members(self, label: int) -> np.ndarray:
        """Node ids belonging to group ``label``."""
        return np.flatnonzero(self.groups == label)

    def group_sizes(self) -> np.ndarray:
        """Array of group sizes indexed by group label."""
        return np.bincount(self.groups, minlength=self.num_groups)

    def out_neighbors(self, u: int) -> list[int]:
        self._check_node(u)
        return list(self._succ[u])

    def out_degree(self, u: int) -> int:
        self._check_node(u)
        return len(self._succ[u])

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate stored arcs as ``(u, v, p)`` triples.

        For undirected graphs each input edge appears twice (both arcs).
        """
        for u, (nbrs, probs) in enumerate(zip(self._succ, self._succ_p)):
            for v, p in zip(nbrs, probs):
                yield u, v, p

    def out_adjacency(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR-style arrays ``(indptr, indices, probabilities)`` of out-arcs.

        Cached; used by the cascade simulator and RIS sampler where Python
        list traversal would dominate runtime.
        """
        if self._csr_cache is None:
            indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
            for u in range(self.num_nodes):
                indptr[u + 1] = indptr[u] + len(self._succ[u])
            indices = np.empty(indptr[-1], dtype=np.int64)
            probs = np.empty(indptr[-1], dtype=np.float64)
            for u in range(self.num_nodes):
                lo, hi = indptr[u], indptr[u + 1]
                indices[lo:hi] = self._succ[u]
                probs[lo:hi] = self._succ_p[u]
            self._csr_cache = (indptr, indices, probs)
        return self._csr_cache

    def transpose_adjacency(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR arrays ``(indptr, indices, probabilities)`` of *in*-arcs.

        Equals ``transpose().out_adjacency()`` entry for entry (arcs of a
        target sorted by source in insertion order) but is built directly
        from the cached out-CSR with one stable argsort instead of
        re-adding every arc to a fresh Python adjacency list — the RIS
        sampler and IMM schedule hit this once per collection.
        """
        if self._transpose_cache is None:
            indptr, indices, probs = self.out_adjacency()
            t_indptr, sources, order = invert_csr(
                indptr, indices, self.num_nodes
            )
            self._transpose_cache = (t_indptr, sources, probs[order])
        return self._transpose_cache

    def transpose(self) -> "Graph":
        """Reverse of the graph (arcs flipped); groups carried over.

        For undirected graphs the transpose equals the graph itself, but a
        fresh object is still returned so that mutation stays local.
        """
        g = Graph(self.num_nodes, directed=True)
        for u, v, p in self.edges():
            g.add_edge(v, u, probability=p)
        if self._groups is not None:
            g.set_groups(self._groups)
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "directed" if self.directed else "undirected"
        grp = f", groups={self._num_groups}" if self._groups is not None else ""
        return f"Graph({kind}, n={self.num_nodes}, edges={self.num_edges}{grp})"

    # ------------------------------------------------------------------
    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.num_nodes:
            raise IndexError(f"node {u} out of range [0, {self.num_nodes})")


class CSRGraph(Graph):
    """Immutable graph backed directly by CSR arrays.

    The out-of-core representation: both the forward and the transposed
    adjacency arrive pre-built (typically as read-only ``np.memmap``
    views from :func:`repro.graphs.io.read_csr_graph`) and are served
    as-is — no per-node Python adjacency lists are ever materialised, so
    a million-node graph costs O(1) heap beyond the (possibly
    memory-mapped) arrays themselves.

    Mutation is rejected with :class:`repro.errors.StorageError`: the
    arrays may be shared, file-backed pages. ``version`` is permanently
    0 and :meth:`Graph.mutations_since` reports an empty delta, so warm
    sessions never try to repair sampled state for these graphs.
    """

    def __init__(
        self,
        num_nodes: int,
        forward: tuple[np.ndarray, np.ndarray, np.ndarray],
        transpose: tuple[np.ndarray, np.ndarray, np.ndarray],
        *,
        directed: bool = True,
        groups: Optional[Sequence[int]] = None,
        num_input_edges: Optional[int] = None,
        store_kind: str = "ram",
    ) -> None:
        self.num_nodes = check_positive_int(num_nodes, "num_nodes")
        self.directed = bool(directed)
        self.store_kind = str(store_kind)
        # No Python adjacency: every query goes through the CSR caches.
        self._succ = None  # type: ignore[assignment]
        self._succ_p = None  # type: ignore[assignment]
        self._groups = None
        self._num_groups = 0
        fwd_indptr, fwd_indices, fwd_probs = forward
        t_indptr, t_indices, t_probs = transpose
        if fwd_indptr.size != self.num_nodes + 1:
            raise StorageError(
                f"forward indptr has {fwd_indptr.size} entries, "
                f"expected {self.num_nodes + 1}"
            )
        if t_indptr.size != self.num_nodes + 1:
            raise StorageError(
                f"transpose indptr has {t_indptr.size} entries, "
                f"expected {self.num_nodes + 1}"
            )
        if int(fwd_indptr[-1]) != int(t_indptr[-1]):
            raise StorageError(
                "forward and transpose CSR disagree on arc count: "
                f"{int(fwd_indptr[-1])} vs {int(t_indptr[-1])}"
            )
        self._csr_cache = (fwd_indptr, fwd_indices, fwd_probs)
        self._transpose_cache = (t_indptr, t_indices, t_probs)
        arcs = int(fwd_indptr[-1])
        if num_input_edges is None:
            num_input_edges = arcs if self.directed else arcs // 2
        self._num_input_edges = int(num_input_edges)
        self._version = 0
        self._mutation_log = []
        self._log_floor = 0
        if groups is not None:
            self.set_groups(groups)

    # -- immutability ----------------------------------------------------
    def _immutable(self) -> StorageError:
        return StorageError(
            "CSR-backed graphs are immutable; rebuild the graph (or load "
            "with the text format) to mutate edges"
        )

    def add_edge(self, u: int, v: int, *, probability: float = 1.0) -> None:
        raise self._immutable()

    def set_edge_probabilities(self, probability: float) -> None:
        raise self._immutable()

    def set_arc_probability(self, u: int, v: int, probability: float) -> None:
        raise self._immutable()

    # -- queries served from the CSR arrays ------------------------------
    @property
    def num_arcs(self) -> int:
        return int(self._csr_cache[0][-1])

    def out_neighbors(self, u: int) -> list[int]:
        self._check_node(u)
        indptr, indices, _ = self._csr_cache
        return indices[indptr[u]:indptr[u + 1]].tolist()

    def out_degree(self, u: int) -> int:
        self._check_node(u)
        indptr = self._csr_cache[0]
        return int(indptr[u + 1] - indptr[u])

    def edges(self) -> Iterator[tuple[int, int, float]]:
        indptr, indices, probs = self._csr_cache
        for u in range(self.num_nodes):
            for pos in range(int(indptr[u]), int(indptr[u + 1])):
                yield u, int(indices[pos]), float(probs[pos])

    def transpose(self) -> "CSRGraph":
        g = CSRGraph(
            self.num_nodes,
            self._transpose_cache,
            self._csr_cache,
            directed=True,
            num_input_edges=self._num_input_edges,
            store_kind=self.store_kind,
        )
        if self._groups is not None:
            g.set_groups(self._groups)
        return g

    def release(self) -> None:
        """Drop resident pages of all memory-mapped arrays (best effort)."""
        from repro.storage.backend import release_array

        for arr in (*self._csr_cache, *self._transpose_cache):
            release_array(arr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grp = f", groups={self._num_groups}" if self._groups is not None else ""
        return (
            f"CSRGraph(store={self.store_kind}, n={self.num_nodes}, "
            f"arcs={self.num_arcs}{grp})"
        )
