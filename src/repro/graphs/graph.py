"""A compact directed/undirected graph with per-node group labels.

Nodes are the integers ``0..n-1``. Edges may carry a propagation
probability (used by the independent-cascade model); unweighted graphs get
probability 1.0 on every edge. Undirected graphs are stored as two directed
arcs so that the influence and coverage code paths are identical for both.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GroupPartitionError
from repro.utils.csr import invert_csr
from repro.utils.validation import check_positive_int

EdgeLike = Tuple[int, int]
WeightedEdgeLike = Tuple[int, int, float]


class Graph:
    """Adjacency-list graph over nodes ``0..n-1``.

    Parameters
    ----------
    num_nodes:
        Number of nodes; nodes are implicit integers.
    edges:
        Iterable of ``(u, v)`` or ``(u, v, p)`` tuples. For undirected
        graphs each input edge creates both arcs.
    directed:
        Whether edges are one-way arcs.
    groups:
        Optional per-node group labels in ``[0, c)``; required by the
        fairness objectives. May be attached later via :meth:`set_groups`.
    """

    def __init__(
        self,
        num_nodes: int,
        edges: Iterable[EdgeLike | WeightedEdgeLike] = (),
        *,
        directed: bool = False,
        groups: Optional[Sequence[int]] = None,
    ) -> None:
        self.num_nodes = check_positive_int(num_nodes, "num_nodes")
        self.directed = bool(directed)
        self._succ: list[list[int]] = [[] for _ in range(self.num_nodes)]
        self._succ_p: list[list[float]] = [[] for _ in range(self.num_nodes)]
        self._num_input_edges = 0
        self._groups: Optional[np.ndarray] = None
        self._num_groups = 0
        self._csr_cache: Optional[tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._transpose_cache: Optional[
            tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = None
        self._version = 0
        for edge in edges:
            if len(edge) == 2:
                u, v = edge  # type: ignore[misc]
                self.add_edge(int(u), int(v))
            else:
                u, v, p = edge  # type: ignore[misc]
                self.add_edge(int(u), int(v), probability=float(p))
        if groups is not None:
            self.set_groups(groups)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, *, probability: float = 1.0) -> None:
        """Add edge ``u -> v`` (and ``v -> u`` when undirected)."""
        self._check_node(u)
        self._check_node(v)
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"edge probability must be in [0, 1], got {probability}")
        self._succ[u].append(v)
        self._succ_p[u].append(probability)
        if not self.directed and u != v:
            self._succ[v].append(u)
            self._succ_p[v].append(probability)
        self._num_input_edges += 1
        self._csr_cache = None
        self._transpose_cache = None
        self._version += 1

    def set_groups(self, groups: Sequence[int]) -> None:
        """Attach group labels; labels must be ``0..c-1`` with no empty group."""
        arr = np.asarray(groups, dtype=np.int64)
        if arr.shape != (self.num_nodes,):
            raise GroupPartitionError(
                f"groups must have length {self.num_nodes}, got {arr.shape}"
            )
        if arr.size and arr.min() < 0:
            raise GroupPartitionError("group labels must be non-negative")
        c = int(arr.max()) + 1 if arr.size else 0
        present = np.bincount(arr, minlength=c)
        if np.any(present == 0):
            missing = np.flatnonzero(present == 0).tolist()
            raise GroupPartitionError(f"empty group label(s): {missing}")
        self._groups = arr
        self._num_groups = c

    def set_edge_probabilities(self, probability: float) -> None:
        """Overwrite every arc's propagation probability with a constant.

        The paper's IM experiments use uniform ``p = 0.1`` or ``p = 0.01``.
        """
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        for plist in self._succ_p:
            for i in range(len(plist)):
                plist[i] = probability
        self._csr_cache = None
        self._transpose_cache = None
        self._version += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of input edges (arcs if directed, undirected edges otherwise)."""
        return self._num_input_edges

    @property
    def num_arcs(self) -> int:
        """Number of stored directed arcs (2x input edges when undirected)."""
        return sum(len(lst) for lst in self._succ)

    @property
    def version(self) -> int:
        """Mutation counter, bumped by every structural or weight change.

        External caches keyed by graph identity (e.g. the experiment
        harness's sampled-collection cache) include this so an in-place
        ``add_edge``/``set_edge_probabilities`` invalidates their entries
        the same way it invalidates the graph's own CSR caches.
        """
        return self._version

    @property
    def groups(self) -> np.ndarray:
        if self._groups is None:
            raise GroupPartitionError("graph has no group labels attached")
        return self._groups

    @property
    def has_groups(self) -> bool:
        return self._groups is not None

    @property
    def num_groups(self) -> int:
        if self._groups is None:
            raise GroupPartitionError("graph has no group labels attached")
        return self._num_groups

    def group_members(self, label: int) -> np.ndarray:
        """Node ids belonging to group ``label``."""
        return np.flatnonzero(self.groups == label)

    def group_sizes(self) -> np.ndarray:
        """Array of group sizes indexed by group label."""
        return np.bincount(self.groups, minlength=self.num_groups)

    def out_neighbors(self, u: int) -> list[int]:
        self._check_node(u)
        return list(self._succ[u])

    def out_degree(self, u: int) -> int:
        self._check_node(u)
        return len(self._succ[u])

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate stored arcs as ``(u, v, p)`` triples.

        For undirected graphs each input edge appears twice (both arcs).
        """
        for u, (nbrs, probs) in enumerate(zip(self._succ, self._succ_p)):
            for v, p in zip(nbrs, probs):
                yield u, v, p

    def out_adjacency(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR-style arrays ``(indptr, indices, probabilities)`` of out-arcs.

        Cached; used by the cascade simulator and RIS sampler where Python
        list traversal would dominate runtime.
        """
        if self._csr_cache is None:
            indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
            for u in range(self.num_nodes):
                indptr[u + 1] = indptr[u] + len(self._succ[u])
            indices = np.empty(indptr[-1], dtype=np.int64)
            probs = np.empty(indptr[-1], dtype=np.float64)
            for u in range(self.num_nodes):
                lo, hi = indptr[u], indptr[u + 1]
                indices[lo:hi] = self._succ[u]
                probs[lo:hi] = self._succ_p[u]
            self._csr_cache = (indptr, indices, probs)
        return self._csr_cache

    def transpose_adjacency(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR arrays ``(indptr, indices, probabilities)`` of *in*-arcs.

        Equals ``transpose().out_adjacency()`` entry for entry (arcs of a
        target sorted by source in insertion order) but is built directly
        from the cached out-CSR with one stable argsort instead of
        re-adding every arc to a fresh Python adjacency list — the RIS
        sampler and IMM schedule hit this once per collection.
        """
        if self._transpose_cache is None:
            indptr, indices, probs = self.out_adjacency()
            t_indptr, sources, order = invert_csr(
                indptr, indices, self.num_nodes
            )
            self._transpose_cache = (t_indptr, sources, probs[order])
        return self._transpose_cache

    def transpose(self) -> "Graph":
        """Reverse of the graph (arcs flipped); groups carried over.

        For undirected graphs the transpose equals the graph itself, but a
        fresh object is still returned so that mutation stays local.
        """
        g = Graph(self.num_nodes, directed=True)
        for u, v, p in self.edges():
            g.add_edge(v, u, probability=p)
        if self._groups is not None:
            g.set_groups(self._groups)
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "directed" if self.directed else "undirected"
        grp = f", groups={self._num_groups}" if self._groups is not None else ""
        return f"Graph({kind}, n={self.num_nodes}, edges={self.num_edges}{grp})"

    # ------------------------------------------------------------------
    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.num_nodes:
            raise IndexError(f"node {u} out of range [0, {self.num_nodes})")
