"""Persistence for graphs: text edge lists and binary CSR files.

Two formats:

**Text edge list** (one record per line, ``#`` comments allowed) —
human-readable interchange, mirrors common SNAP-style dumps:

* header line: ``n <num_nodes> <directed|undirected>``
* optional group line: ``g <label_0> <label_1> ... <label_{n-1}>``
* edge lines: ``e <u> <v> [probability]``

**Binary CSR** (``RCSR`` magic) — the out-of-core representation. The
file stores *both* the forward and the transposed adjacency (built once
at write time) so that :func:`read_csr_graph` can memory-map either
direction without an O(arcs log arcs) inversion at load, plus optional
group labels. Layout, all little-endian, 8-byte aligned:

===========  =======================  =====================================
offset       field                    contents
===========  =======================  =====================================
0            magic                    ``b"RCSR"``
4            format version           ``uint32`` (currently 1)
8            num_nodes ``n``          ``uint64``
16           num_arcs ``m``           ``uint64``
24           num_input_edges          ``uint64``
32           flags                    ``uint64`` (bit0 directed, bit1 groups)
40           fwd_indptr               ``int64[n + 1]``
…            fwd_indices              ``int64[m]``
…            fwd_probs                ``float64[m]``
…            t_indptr                 ``int64[n + 1]``
…            t_indices                ``int64[m]``
…            t_probs                  ``float64[m]``
…            groups (if flagged)      ``int64[n]``
===========  =======================  =====================================

Corrupt headers (bad magic, unknown version, size mismatch) raise the
typed :class:`repro.errors.StorageError` so callers can distinguish
storage corruption from argument errors.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import StorageError
from repro.graphs.graph import CSRGraph, Graph

PathLike = Union[str, Path]

CSR_MAGIC = b"RCSR"
CSR_FORMAT_VERSION = 1
_CSR_HEADER = struct.Struct("<4sI4Q")  # magic, version, n, m, edges, flags
_FLAG_DIRECTED = 1
_FLAG_GROUPS = 2


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Serialise ``graph`` (including groups, if any) to ``path``."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        kind = "directed" if graph.directed else "undirected"
        fh.write(f"n {graph.num_nodes} {kind}\n")
        if graph.has_groups:
            fh.write("g " + " ".join(str(int(x)) for x in graph.groups) + "\n")
        seen: set[tuple[int, int]] = set()
        for u, v, p in graph.edges():
            if not graph.directed:
                key = (min(u, v), max(u, v))
                if key in seen:
                    continue
                seen.add(key)
            fh.write(f"e {u} {v} {p:.10g}\n")


def read_edge_list(path: PathLike) -> Graph:
    """Parse a graph previously written by :func:`write_edge_list`."""
    path = Path(path)
    graph: Graph | None = None
    groups: list[int] | None = None
    with path.open("r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            tag = parts[0]
            if tag == "n":
                if graph is not None:
                    raise ValueError(f"{path}:{lineno}: duplicate header line")
                if len(parts) != 3 or parts[2] not in ("directed", "undirected"):
                    raise ValueError(f"{path}:{lineno}: malformed header {line!r}")
                graph = Graph(int(parts[1]), directed=parts[2] == "directed")
            elif tag == "g":
                if graph is None:
                    raise ValueError(f"{path}:{lineno}: groups before header")
                groups = [int(x) for x in parts[1:]]
            elif tag == "e":
                if graph is None:
                    raise ValueError(f"{path}:{lineno}: edge before header")
                if len(parts) == 3:
                    graph.add_edge(int(parts[1]), int(parts[2]))
                elif len(parts) == 4:
                    graph.add_edge(
                        int(parts[1]), int(parts[2]), probability=float(parts[3])
                    )
                else:
                    raise ValueError(f"{path}:{lineno}: malformed edge {line!r}")
            else:
                raise ValueError(f"{path}:{lineno}: unknown record tag {tag!r}")
    if graph is None:
        raise ValueError(f"{path}: missing header line")
    if groups is not None:
        graph.set_groups(groups)
    return graph


# ---------------------------------------------------------------------------
# Binary CSR format
# ---------------------------------------------------------------------------
def write_csr_arrays(
    path: PathLike,
    *,
    num_nodes: int,
    forward: tuple[np.ndarray, np.ndarray, np.ndarray],
    transpose: tuple[np.ndarray, np.ndarray, np.ndarray],
    directed: bool,
    num_input_edges: int,
    groups: Optional[Sequence[int]] = None,
) -> None:
    """Write pre-built forward + transpose CSR arrays as one ``RCSR`` file.

    Low-level entry point for generators that build adjacency directly
    in NumPy (the out-of-core benchmark); :func:`write_csr_graph` is the
    :class:`Graph` convenience wrapper.
    """
    path = Path(path)
    fwd_indptr = np.ascontiguousarray(forward[0], dtype=np.int64)
    fwd_indices = np.ascontiguousarray(forward[1], dtype=np.int64)
    fwd_probs = np.ascontiguousarray(forward[2], dtype=np.float64)
    t_indptr = np.ascontiguousarray(transpose[0], dtype=np.int64)
    t_indices = np.ascontiguousarray(transpose[1], dtype=np.int64)
    t_probs = np.ascontiguousarray(transpose[2], dtype=np.float64)
    n = int(num_nodes)
    m = int(fwd_indptr[-1])
    if fwd_indptr.size != n + 1 or t_indptr.size != n + 1:
        raise StorageError(
            f"indptr arrays must have {n + 1} entries, got "
            f"{fwd_indptr.size} / {t_indptr.size}"
        )
    if (
        fwd_indices.size != m
        or fwd_probs.size != m
        or t_indices.size != m
        or t_probs.size != m
        or int(t_indptr[-1]) != m
    ):
        raise StorageError("CSR arrays disagree on the arc count")
    flags = (_FLAG_DIRECTED if directed else 0)
    groups_arr: Optional[np.ndarray] = None
    if groups is not None:
        groups_arr = np.ascontiguousarray(groups, dtype=np.int64)
        if groups_arr.size != n:
            raise StorageError(
                f"groups must have {n} entries, got {groups_arr.size}"
            )
        flags |= _FLAG_GROUPS
    with path.open("wb") as fh:
        fh.write(
            _CSR_HEADER.pack(
                CSR_MAGIC, CSR_FORMAT_VERSION, n, m, int(num_input_edges),
                flags,
            )
        )
        for arr in (fwd_indptr, fwd_indices, fwd_probs,
                    t_indptr, t_indices, t_probs):
            fh.write(memoryview(arr).cast("B"))
        if groups_arr is not None:
            fh.write(memoryview(groups_arr).cast("B"))


def write_csr_graph(graph: Graph, path: PathLike) -> None:
    """Serialise ``graph`` (groups included) to the binary CSR format."""
    write_csr_arrays(
        path,
        num_nodes=graph.num_nodes,
        forward=graph.out_adjacency(),
        transpose=graph.transpose_adjacency(),
        directed=graph.directed,
        num_input_edges=graph.num_edges,
        groups=graph.groups if graph.has_groups else None,
    )


def _csr_layout(n: int, m: int, has_groups: bool) -> list[tuple[int, int]]:
    """``(offset, length)`` of each array section, in file order."""
    sections = [n + 1, m, m, n + 1, m, m] + ([n] if has_groups else [])
    layout = []
    offset = _CSR_HEADER.size
    for length in sections:
        layout.append((offset, length))
        offset += 8 * length
    return layout


def read_csr_header(path: PathLike) -> dict[str, int]:
    """Validate the ``RCSR`` header of ``path`` and return its fields."""
    path = Path(path)
    try:
        size = path.stat().st_size
        with path.open("rb") as fh:
            raw = fh.read(_CSR_HEADER.size)
    except OSError as exc:
        raise StorageError(f"cannot read CSR graph {path}: {exc}") from exc
    if len(raw) < _CSR_HEADER.size:
        raise StorageError(
            f"{path}: truncated CSR header ({len(raw)} bytes, "
            f"need {_CSR_HEADER.size})"
        )
    magic, version, n, m, num_input_edges, flags = _CSR_HEADER.unpack(raw)
    if magic != CSR_MAGIC:
        raise StorageError(
            f"{path}: bad magic {magic!r}, expected {CSR_MAGIC!r}"
        )
    if version != CSR_FORMAT_VERSION:
        raise StorageError(
            f"{path}: unsupported CSR format version {version}, "
            f"expected {CSR_FORMAT_VERSION}"
        )
    has_groups = bool(flags & _FLAG_GROUPS)
    expected = _csr_layout(n, m, has_groups)[-1]
    expected_size = expected[0] + 8 * expected[1]
    if size != expected_size:
        raise StorageError(
            f"{path}: file is {size} bytes but the header implies "
            f"{expected_size} (n={n}, m={m}, groups={has_groups})"
        )
    return {
        "num_nodes": int(n),
        "num_arcs": int(m),
        "num_input_edges": int(num_input_edges),
        "directed": int(bool(flags & _FLAG_DIRECTED)),
        "has_groups": int(has_groups),
    }


def read_csr_graph(path: PathLike, *, store: str = "mmap") -> CSRGraph:
    """Load an ``RCSR`` file as a :class:`CSRGraph`.

    ``store="mmap"`` (the default) returns read-only ``np.memmap`` views
    — nothing is materialised in RAM and the arrays are resident-zero
    for cache accounting. ``store="ram"`` copies the arrays onto the
    heap (useful for bitwise comparison tests and small graphs).
    """
    path = Path(path)
    header = read_csr_header(path)
    if store not in ("ram", "mmap"):
        raise StorageError(
            f"unknown store kind {store!r}, expected 'ram' or 'mmap'"
        )
    n = header["num_nodes"]
    m = header["num_arcs"]
    has_groups = bool(header["has_groups"])
    layout = _csr_layout(n, m, has_groups)
    dtypes = [np.int64, np.int64, np.float64, np.int64, np.int64, np.float64]
    if has_groups:
        dtypes.append(np.int64)
    arrays: list[np.ndarray] = []
    for (offset, length), dtype in zip(layout, dtypes):
        if length == 0:
            arrays.append(np.zeros(0, dtype=dtype))
        elif store == "mmap":
            arrays.append(
                np.memmap(path, dtype=dtype, mode="r", offset=offset,
                          shape=(length,))
            )
        else:
            with path.open("rb") as fh:
                fh.seek(offset)
                arrays.append(np.fromfile(fh, dtype=dtype, count=length))
    groups = arrays[6] if has_groups else None
    return CSRGraph(
        n,
        (arrays[0], arrays[1], arrays[2]),
        (arrays[3], arrays[4], arrays[5]),
        directed=bool(header["directed"]),
        groups=groups,
        num_input_edges=header["num_input_edges"],
        store_kind=store,
    )
