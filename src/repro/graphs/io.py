"""Plain-text persistence for graphs.

Format (one record per line, ``#`` comments allowed):

* header line: ``n <num_nodes> <directed|undirected>``
* optional group line: ``g <label_0> <label_1> ... <label_{n-1}>``
* edge lines: ``e <u> <v> [probability]``

The format exists so that benchmark datasets can be generated once and
reused across processes; it intentionally mirrors common edge-list dumps
(SNAP-style) plus a group row.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.graphs.graph import Graph

PathLike = Union[str, Path]


def write_edge_list(graph: Graph, path: PathLike) -> None:
    """Serialise ``graph`` (including groups, if any) to ``path``."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        kind = "directed" if graph.directed else "undirected"
        fh.write(f"n {graph.num_nodes} {kind}\n")
        if graph.has_groups:
            fh.write("g " + " ".join(str(int(x)) for x in graph.groups) + "\n")
        seen: set[tuple[int, int]] = set()
        for u, v, p in graph.edges():
            if not graph.directed:
                key = (min(u, v), max(u, v))
                if key in seen:
                    continue
                seen.add(key)
            fh.write(f"e {u} {v} {p:.10g}\n")


def read_edge_list(path: PathLike) -> Graph:
    """Parse a graph previously written by :func:`write_edge_list`."""
    path = Path(path)
    graph: Graph | None = None
    groups: list[int] | None = None
    with path.open("r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            tag = parts[0]
            if tag == "n":
                if graph is not None:
                    raise ValueError(f"{path}:{lineno}: duplicate header line")
                if len(parts) != 3 or parts[2] not in ("directed", "undirected"):
                    raise ValueError(f"{path}:{lineno}: malformed header {line!r}")
                graph = Graph(int(parts[1]), directed=parts[2] == "directed")
            elif tag == "g":
                if graph is None:
                    raise ValueError(f"{path}:{lineno}: groups before header")
                groups = [int(x) for x in parts[1:]]
            elif tag == "e":
                if graph is None:
                    raise ValueError(f"{path}:{lineno}: edge before header")
                if len(parts) == 3:
                    graph.add_edge(int(parts[1]), int(parts[2]))
                elif len(parts) == 4:
                    graph.add_edge(
                        int(parts[1]), int(parts[2]), probability=float(parts[3])
                    )
                else:
                    raise ValueError(f"{path}:{lineno}: malformed edge {line!r}")
            else:
                raise ValueError(f"{path}:{lineno}: unknown record tag {tag!r}")
    if graph is None:
        raise ValueError(f"{path}: missing header line")
    if groups is not None:
        graph.set_groups(groups)
    return graph
