"""Lightweight graph substrate.

The paper's maximum-coverage and influence-maximization experiments run on
social graphs. We implement our own adjacency-list graph (rather than
depending on a graph library) because the solvers only need a handful of
operations — out-neighbour iteration, transpose, degree — and the influence
subsystem benefits from the compact CSR-style layout exposed by
:meth:`Graph.out_adjacency`.
"""

from repro.graphs.graph import Graph, GraphDelta
from repro.graphs.generators import (
    erdos_renyi,
    gaussian_points,
    preferential_attachment,
    stochastic_block_model,
)
from repro.graphs.io import read_edge_list, write_edge_list
from repro.graphs.metrics import (
    GraphStatistics,
    degree_sequence,
    gini_coefficient,
    global_clustering,
    graph_statistics,
    group_homophily,
)

__all__ = [
    "Graph",
    "GraphDelta",
    "GraphStatistics",
    "degree_sequence",
    "erdos_renyi",
    "gaussian_points",
    "gini_coefficient",
    "global_clustering",
    "graph_statistics",
    "group_homophily",
    "preferential_attachment",
    "read_edge_list",
    "stochastic_block_model",
    "write_edge_list",
]
