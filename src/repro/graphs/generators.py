"""Random-graph generators used to build the paper's datasets.

The paper's synthetic RAND graphs are stochastic block models (SBM) with
intra-/inter-group probabilities 0.1 / 0.02 (Section 5.1). The real social
graphs (Facebook, DBLP, Pokec) are unavailable offline, so the dataset
layer composes these generators into *-like* graphs that match the papers'
published node counts, edge densities and group mixes — see
``repro/datasets/social.py`` and DESIGN.md §6.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int, check_probability


def stochastic_block_model(
    group_sizes: Sequence[int],
    p_intra: float,
    p_inter: float,
    *,
    seed: SeedLike = None,
    directed: bool = False,
) -> Graph:
    """Sample an SBM graph; node groups are attached to the result.

    Nodes are laid out block-by-block: group 0 first, then group 1, etc.
    Edge sampling is vectorised per block pair (geometric skipping would be
    faster for very sparse blocks but the paper's SBMs are dense enough that
    a Bernoulli matrix per block pair is simpler and fast).
    """
    sizes = [check_positive_int(s, "group size") for s in group_sizes]
    check_probability(p_intra, "p_intra")
    check_probability(p_inter, "p_inter")
    rng = as_generator(seed)
    n = sum(sizes)
    offsets = np.cumsum([0] + sizes)
    groups = np.repeat(np.arange(len(sizes)), sizes)
    graph = Graph(n, directed=directed, groups=groups)
    for gi in range(len(sizes)):
        for gj in range(len(sizes)):
            if not directed and gj < gi:
                continue
            p = p_intra if gi == gj else p_inter
            if p == 0.0:
                continue
            rows = np.arange(offsets[gi], offsets[gi + 1])
            cols = np.arange(offsets[gj], offsets[gj + 1])
            mask = rng.random((rows.size, cols.size)) < p
            if gi == gj:
                if directed:
                    np.fill_diagonal(mask, False)
                else:
                    mask = np.triu(mask, k=1)
            ii, jj = np.nonzero(mask)
            for u, v in zip(rows[ii], cols[jj]):
                graph.add_edge(int(u), int(v))
    return graph


def erdos_renyi(
    num_nodes: int,
    p: float,
    *,
    seed: SeedLike = None,
    directed: bool = False,
) -> Graph:
    """G(n, p) random graph (no groups attached)."""
    n = check_positive_int(num_nodes, "num_nodes")
    check_probability(p, "p")
    rng = as_generator(seed)
    graph = Graph(n, directed=directed)
    if p == 0.0:
        return graph
    mask = rng.random((n, n)) < p
    if directed:
        np.fill_diagonal(mask, False)
    else:
        mask = np.triu(mask, k=1)
    for u, v in zip(*np.nonzero(mask)):
        graph.add_edge(int(u), int(v))
    return graph


def preferential_attachment(
    num_nodes: int,
    edges_per_node: int,
    *,
    seed: SeedLike = None,
    directed: bool = False,
) -> Graph:
    """Barabási–Albert-style growth; yields the heavy-tailed degree
    distribution characteristic of large social networks (Pokec-like).

    Each arriving node attaches to ``edges_per_node`` distinct existing
    nodes chosen proportionally to their current degree (implemented with
    the standard repeated-endpoints urn trick, O(|E|)).
    """
    n = check_positive_int(num_nodes, "num_nodes")
    m = check_positive_int(edges_per_node, "edges_per_node")
    if m >= n:
        raise ValueError(f"edges_per_node ({m}) must be < num_nodes ({n})")
    rng = as_generator(seed)
    graph = Graph(n, directed=directed)
    # Urn of edge endpoints; each entry is one "degree unit".
    urn: list[int] = list(range(m))  # seed clique endpoints
    for u in range(m):
        for v in range(u + 1, m):
            graph.add_edge(u, v)
            urn.extend((u, v))
    for u in range(m, n):
        targets: set[int] = set()
        while len(targets) < m:
            pick = urn[int(rng.integers(0, len(urn)))] if urn else int(
                rng.integers(0, u)
            )
            if pick != u:
                targets.add(pick)
        for v in targets:
            graph.add_edge(u, v)
            urn.extend((u, v))
    return graph


def gaussian_points(
    counts: Sequence[int],
    centers: Optional[np.ndarray] = None,
    *,
    dim: int = 2,
    scale: float = 1.0,
    spread: float = 4.0,
    seed: SeedLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Isotropic Gaussian blobs: returns ``(points, labels)``.

    One blob per entry in ``counts``. Used for the paper's random FL
    datasets ("each group corresponds to an isotropic Gaussian blob",
    Section 5.3) and as the backbone of the spatial FourSquare-like data.
    """
    sizes = [check_positive_int(c, "blob size") for c in counts]
    rng = as_generator(seed)
    k = len(sizes)
    if centers is None:
        centers = rng.uniform(-spread, spread, size=(k, dim))
    centers = np.asarray(centers, dtype=float)
    if centers.shape != (k, dim):
        raise ValueError(f"centers must have shape ({k}, {dim}), got {centers.shape}")
    points = np.vstack([
        rng.normal(loc=centers[i], scale=scale, size=(sizes[i], dim))
        for i in range(k)
    ])
    labels = np.repeat(np.arange(k, dtype=np.int64), sizes)
    return points, labels


def random_groups_graph(
    num_nodes: int,
    avg_degree: float,
    proportions: Sequence[float],
    *,
    seed: SeedLike = None,
    directed: bool = False,
    homophily: float = 2.0,
) -> Graph:
    """Random graph with a target average degree and a given group mix.

    Helper behind the *-like* real-dataset substitutes: an SBM whose
    intra-group probability is ``homophily`` times the inter-group one,
    calibrated so that the expected average degree matches ``avg_degree``.
    """
    n = check_positive_int(num_nodes, "num_nodes")
    if avg_degree <= 0:
        raise ValueError(f"avg_degree must be positive, got {avg_degree}")
    rng = as_generator(seed)
    from repro.utils.rng import deterministic_partition

    labels = deterministic_partition(n, proportions)
    rng.shuffle(labels)
    sizes = np.bincount(labels, minlength=len(list(proportions)))
    # Solve for p_inter such that expected degree == avg_degree given the
    # group sizes: E[deg] = (h * sum_i s_i(s_i-1) + sum_{i!=j} s_i s_j) * p / n
    h = max(homophily, 1.0)
    intra_pairs = float(np.sum(sizes * (sizes - 1)))
    total_pairs = float(n) * (n - 1)
    inter_pairs = total_pairs - intra_pairs
    denom = h * intra_pairs + inter_pairs
    p_inter = min(1.0, avg_degree * n / denom) if denom > 0 else 0.0
    p_intra = min(1.0, h * p_inter)
    # Build an SBM over the shuffled labels. stochastic_block_model expects
    # contiguous blocks, so we sample in block layout then permute.
    order = np.argsort(labels, kind="stable")
    block = stochastic_block_model(
        [int(s) for s in sizes if s > 0], p_intra, p_inter,
        seed=rng, directed=directed,
    )
    inverse = np.empty(n, dtype=np.int64)
    inverse[order] = np.arange(n)
    graph = Graph(n, directed=directed, groups=labels)
    for u, v, p in block.edges():
        if not directed and u > v:
            continue
        graph.add_edge(int(inverse[u]), int(inverse[v]), probability=p)
    return graph
