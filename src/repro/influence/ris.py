"""Reverse-influence sampling (RIS) [Borgs et al. 2014].

A *reverse-reachable (RR) set* for root ``r`` is the random set of nodes
that reach ``r`` through live edges, where each arc ``(u, v)`` is live
independently with probability ``p(u, v)``. The key identity: for any seed
set ``S``, ``P[r activated by S] = P[S intersects RR(r)]``. Averaging the
indicator over many RR sets therefore estimates activation probabilities
— and, with roots drawn per group, the group utilities ``f_i(S)`` needed
by BSM. Coverage of a fixed RR-set collection is monotone submodular in
``S``, so the whole greedy machinery applies to the estimates.

Sampling runs through the batched frontier engine
(:mod:`repro.influence.engine`): all requested RR sets grow level by
level through one shared reverse BFS, and the collection stores them
CSR-packed (``set_indptr``/``set_indices``) so coverage queries and the
objective layer's inverted index are single NumPy passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import GroupPartitionError, StorageError
from repro.graphs.graph import Graph, GraphDelta
from repro.influence.engine import (
    sample_rr_sets_batch,
    sample_rr_sets_packed_units,
    sample_rr_sets_stream,
)
from repro.storage.backend import ArrayBackend, resolve_backend
from repro.storage.segments import DEFAULT_SEGMENT_BYTES, SegmentedRRStore
from repro.utils.csr import build_csr, splice_packed
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int

#: Domain-separation tag for repair seed streams (see
#: :func:`repair_seed_sequence`).
REPAIR_STREAM_TAG = 0x5252_5345

#: Instances per sampling chunk on the segmented path. The sparse
#: reachability chunk has no dense visited buffer, so the chunk size is
#: a plain batching knob: it must only be large enough that the pinned
#: small datasets sample in a single chunk (where the draw law provably
#: coincides with the flat serial path) and small enough that one
#: chunk's packed arrays stay well under any realistic memory budget.
SEGMENT_CHUNK_INSTANCES = 8_192


def segment_bytes_for(memory_budget: Optional[int]) -> int:
    """Segment byte target under ``memory_budget`` total resident bytes.

    The backend selection rule (DESIGN.md §10): a sixteenth of the
    budget per segment, clamped to [1 MB, 256 MB]; without a budget,
    :data:`repro.storage.segments.DEFAULT_SEGMENT_BYTES`. A full pass
    holds one segment's pages plus its per-pass temporaries — the gains
    gather and the flush-time inversion both allocate ~6 int64 arrays
    over the segment's entries, i.e. ~3x the segment's bytes — so a
    sixteenth leaves the rest of the budget for those temporaries, the
    collection-wide bookkeeping (roots, labels, coverage flags) and the
    graph pages touched while sampling.
    """
    if memory_budget is None:
        return DEFAULT_SEGMENT_BYTES
    budget = int(memory_budget)
    if budget <= 0:
        raise ValueError(f"memory_budget must be positive, got {budget}")
    return min(max(budget // 16, 1 << 20), 1 << 28)


class RRCollection:
    """A bag of RR sets plus the group of each root, stored CSR-packed.

    Attributes
    ----------
    set_indptr, set_indices:
        Packed storage: RR set ``j``'s nodes occupy
        ``set_indices[set_indptr[j]:set_indptr[j + 1]]``.
    root_groups:
        Group label of the root of each RR set.
    num_nodes, num_groups:
        Ground-set dimensions (for building objectives).
    group_counts:
        Number of RR sets rooted in each group; the per-group estimate of
        ``f_i(S)`` is (covered sets with group-i root) / ``group_counts[i]``.

    The constructor also accepts the legacy list-of-arrays form via
    ``sets`` (packed on entry); the :attr:`sets` property exposes the
    matching compatibility view as per-set slices of ``set_indices``.
    """

    def __init__(
        self,
        sets: Optional[Sequence[np.ndarray]] = None,
        root_groups: Optional[np.ndarray] = None,
        num_nodes: int = 0,
        num_groups: int = 0,
        *,
        set_indptr: Optional[np.ndarray] = None,
        set_indices: Optional[np.ndarray] = None,
    ) -> None:
        if sets is not None:
            if set_indptr is not None or set_indices is not None:
                raise ValueError("pass either sets or packed arrays, not both")
            set_indptr, set_indices = build_csr(list(sets))
        if set_indptr is None or set_indices is None:
            raise ValueError("either sets or set_indptr/set_indices required")
        self.set_indptr = np.asarray(set_indptr, dtype=np.int64)
        self.set_indices = np.asarray(set_indices, dtype=np.int64)
        self.num_nodes = num_nodes
        self.num_groups = num_groups
        self.root_groups = np.asarray(root_groups, dtype=np.int64)
        if self.set_indptr.size - 1 != self.root_groups.size:
            raise ValueError("sets and root_groups must have equal length")
        counts = np.bincount(self.root_groups, minlength=self.num_groups)
        if np.any(counts == 0):
            raise GroupPartitionError(
                "every group needs at least one RR set for its f_i estimate"
            )
        self.group_counts = counts
        self._row_ids: Optional[np.ndarray] = None

    @classmethod
    def from_packed(
        cls,
        set_indptr: np.ndarray,
        set_indices: np.ndarray,
        root_groups: np.ndarray,
        num_nodes: int,
        num_groups: int,
    ) -> "RRCollection":
        """Wrap already-packed arrays (no copy beyond dtype coercion)."""
        return cls(
            root_groups=root_groups,
            num_nodes=num_nodes,
            num_groups=num_groups,
            set_indptr=set_indptr,
            set_indices=set_indices,
        )

    @property
    def num_sets(self) -> int:
        return self.set_indptr.size - 1

    @property
    def roots(self) -> np.ndarray:
        """Root node of every RR set.

        The sampling engine stores each set root-first, so the roots are
        the first entry of every packed slice (every set has at least its
        root). Needed by the repair path, which resamples an affected set
        from the *same* root so the per-group estimates keep their
        stratification.
        """
        return self.set_indices[self.set_indptr[:-1]]

    @property
    def sets(self) -> list[np.ndarray]:
        """Compatibility view: RR set ``j`` as a slice of ``set_indices``."""
        return [
            self.set_indices[self.set_indptr[j]:self.set_indptr[j + 1]]
            for j in range(self.num_sets)
        ]

    def entry_rows(self) -> np.ndarray:
        """RR-set id of every packed entry (cached ``np.repeat`` expansion)."""
        if self._row_ids is None:
            self._row_ids = np.repeat(
                np.arange(self.num_sets, dtype=np.int64),
                np.diff(self.set_indptr),
            )
        return self._row_ids

    def coverage(self, seeds: np.ndarray | list[int]) -> np.ndarray:
        """Per-group fraction of RR sets hit by ``seeds`` (= ``f_i`` estimate).

        One mask-gather over the packed entries plus two ``bincount``
        passes — no per-set Python loop.
        """
        seed_mask = np.zeros(self.num_nodes, dtype=bool)
        seed_mask[np.asarray(list(seeds), dtype=np.int64)] = True
        hit_rows = self.entry_rows()[seed_mask[self.set_indices]]
        hit = np.bincount(hit_rows, minlength=self.num_sets) > 0
        covered = np.bincount(
            self.root_groups[hit], minlength=self.num_groups
        ).astype(float)
        return covered / self.group_counts


class SegmentedRRCollection:
    """RR sets held in a :class:`SegmentedRRStore` instead of flat arrays.

    The out-of-core twin of :class:`RRCollection`: same group bookkeeping
    (``root_groups``/``group_counts`` stay heap-resident — they are
    O(num sets), needed by every gains fold), but the packed sets and
    the inverted index live in byte-budgeted backend segments. Coverage
    queries walk segment by segment and release pages as they go.
    """

    def __init__(
        self,
        store: SegmentedRRStore,
        root_groups: np.ndarray,
        num_nodes: int,
        num_groups: int,
    ) -> None:
        self.store = store
        self.num_nodes = num_nodes
        self.num_groups = num_groups
        self.root_groups = np.asarray(root_groups, dtype=np.int64)
        if store.num_sets != self.root_groups.size:
            raise StorageError(
                f"store holds {store.num_sets} sets but root_groups has "
                f"{self.root_groups.size} entries"
            )
        counts = np.bincount(self.root_groups, minlength=self.num_groups)
        if np.any(counts == 0):
            raise GroupPartitionError(
                "every group needs at least one RR set for its f_i estimate"
            )
        self.group_counts = counts

    @property
    def num_sets(self) -> int:
        return self.store.num_sets

    @property
    def roots(self) -> np.ndarray:
        """Root node of every RR set (one heap-resident pass)."""
        return self.store.roots()

    def coverage(self, seeds: np.ndarray | list[int]) -> np.ndarray:
        """Per-group fraction of RR sets hit by ``seeds``, segment by segment.

        Same integer hit counts as the flat
        :meth:`RRCollection.coverage`, folded per segment, so the float
        fractions are bitwise-identical.
        """
        seed_mask = np.zeros(self.num_nodes, dtype=bool)
        seed_mask[np.asarray(list(seeds), dtype=np.int64)] = True
        hit = self.store.hit_rows(seed_mask)
        covered = np.bincount(
            self.root_groups[hit], minlength=self.num_groups
        ).astype(float)
        return covered / self.group_counts


def sample_rr_set(
    transpose_adjacency: tuple[np.ndarray, np.ndarray, np.ndarray],
    root: int,
    rng: np.random.Generator,
    scratch: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Sample one RR set by a randomized reverse BFS from ``root``.

    ``transpose_adjacency`` is the CSR triple of the *transpose* graph, so
    walking its out-arcs follows original arcs backwards. ``scratch`` is an
    optional reusable visited buffer (cleared on entry) to avoid an O(n)
    allocation per sample. Collections should be sampled through
    :func:`repro.influence.engine.sample_rr_sets_batch` instead — this
    scalar path remains as the per-sample reference (benchmarked against
    the engine in ``benchmarks/bench_rr_engine.py``).
    """
    indptr, indices, probs = transpose_adjacency
    n = indptr.size - 1
    if not 0 <= root < n:
        raise IndexError(f"root {root} out of range [0, {n})")
    if scratch is None:
        visited = np.zeros(n, dtype=bool)
    else:
        visited = scratch
        visited[:] = False
    visited[root] = True
    out = [root]
    frontier = [root]
    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            lo, hi = indptr[u], indptr[u + 1]
            if lo == hi:
                continue
            hits = rng.random(hi - lo) < probs[lo:hi]
            for v in indices[lo:hi][hits]:
                if not visited[v]:
                    visited[v] = True
                    out.append(int(v))
                    next_frontier.append(int(v))
        frontier = next_frontier
    return np.asarray(out, dtype=np.int64)


def _draw_roots(
    graph: Graph,
    num_samples: int,
    rng: np.random.Generator,
    stratified: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Draw RR roots and their group labels (the shared root law).

    Factored out of :func:`sample_rr_collection` so the flat and the
    segmented paths consume *exactly* the same root draws — the first
    precondition of their bitwise-identity contract.
    """
    labels = graph.groups
    c = graph.num_groups
    if stratified:
        total = max(num_samples, c)
        base, rem = divmod(total, c)
        root_parts: list[np.ndarray] = []
        group_parts: list[np.ndarray] = []
        for i in range(c):
            quota = base + (1 if i < rem else 0)
            members = np.flatnonzero(labels == i)
            root_parts.append(members[rng.integers(0, members.size, size=quota)])
            group_parts.append(np.full(quota, i, dtype=np.int64))
        return np.concatenate(root_parts), np.concatenate(group_parts)
    roots = rng.integers(0, graph.num_nodes, size=num_samples)
    root_groups = labels[roots]
    # Guarantee at least one RR set per group (collections require it).
    present = np.bincount(root_groups, minlength=c)
    extra_roots = [
        graph.group_members(i)[rng.integers(0, graph.group_sizes()[i])]
        for i in np.flatnonzero(present == 0)
    ]
    if extra_roots:
        roots = np.concatenate([roots, np.asarray(extra_roots)])
        root_groups = labels[roots]
    return roots, root_groups


def sample_rr_collection(
    graph: Graph,
    num_samples: int,
    *,
    seed: SeedLike = None,
    stratified: bool = True,
    workers: Optional[int] = None,
    store: str = "ram",
    memory_budget: Optional[int] = None,
    backend: Optional[ArrayBackend] = None,
    exec_backend: Optional[str] = None,
    kernel: Optional[str] = None,
) -> RRCollection | SegmentedRRCollection:
    """Sample an :class:`RRCollection` from a grouped graph.

    Parameters
    ----------
    num_samples:
        Total number of RR sets. When ``stratified`` and the graph has
        more groups than ``num_samples``, the total is clamped up to
        ``max(num_samples, num_groups)`` — one RR set per group is the
        minimum for every ``f_i`` estimate to exist. (The unstratified
        path can likewise exceed ``num_samples`` by up to the number of
        groups that uniform root draws missed.)
    stratified:
        ``True`` (default) splits the budget evenly across groups so every
        ``f_i`` estimate has comparable variance — important because the
        fairness objective is driven by the *smallest* (often rarest)
        group. ``False`` draws roots uniformly from all users, matching
        plain IMM.
    workers:
        Worker-pool width for the sampling engine
        (:mod:`repro.utils.parallel`). ``None`` keeps the serial in-line
        stream; any integer switches to the worker-count-invariant unit
        decomposition (bitwise-identical collections for all counts and
        backends). On the segmented store, units stream through a
        bounded in-flight window and append in unit order, so the
        stored sets are bitwise those of the flat ``workers`` path.
    store:
        ``"ram"`` (default) builds the flat in-memory
        :class:`RRCollection`; ``"mmap"`` streams completed sampling
        chunks into byte-budgeted memory-mapped segments and returns a
        :class:`SegmentedRRCollection`.
    memory_budget:
        Target resident bytes for the segmented path; sets the segment
        byte budget via :func:`segment_bytes_for`. Ignored by the flat
        store.
    backend:
        Explicit :class:`repro.storage.backend.ArrayBackend` for the
        segments (tests inject scratch directories); defaults to a fresh
        backend of the ``store`` kind.
    exec_backend:
        Pool flavour for the ``workers`` path — ``"thread"`` (default),
        ``"process"``, or ``"serial"``; see :mod:`repro.utils.parallel`.
    kernel:
        Hot-loop implementation set (see :mod:`repro.kernels`); ``None``
        resolves the best available. Results are bitwise-identical for
        every kernel.
    """
    check_positive_int(num_samples, "num_samples")
    if store not in ("ram", "mmap"):
        raise StorageError(
            f"unknown store kind {store!r}, expected 'ram' or 'mmap'"
        )
    rng = as_generator(seed)
    c = graph.num_groups
    transpose = graph.transpose_adjacency()
    roots, root_groups = _draw_roots(graph, num_samples, rng, stratified)
    if store == "ram" and backend is None:
        set_indptr, set_indices = sample_rr_sets_batch(
            transpose,
            roots,
            rng,
            workers=workers,
            exec_backend=exec_backend,
            kernel=kernel,
        )
        return RRCollection.from_packed(
            set_indptr, set_indices, root_groups, graph.num_nodes, c
        )
    if backend is None:
        backend = resolve_backend(store)
    seg_store = SegmentedRRStore(
        graph.num_nodes,
        backend,
        segment_bytes=segment_bytes_for(memory_budget),
    )
    if workers is not None:
        # The flat workers law, streamed: same units, same spawned seed
        # streams, packed pairs appended in unit order through a bounded
        # in-flight window — stored sets are bitwise the flat path's.
        chunks = sample_rr_sets_packed_units(
            transpose,
            roots,
            rng,
            workers=workers,
            exec_backend=exec_backend,
            kernel=kernel,
        )
    else:
        chunks = sample_rr_sets_stream(
            transpose,
            roots,
            rng,
            chunk_instances=SEGMENT_CHUNK_INSTANCES,
            kernel=kernel,
        )
    for chunk_indptr, chunk_indices in chunks:
        seg_store.append_chunk(chunk_indptr, chunk_indices)
    seg_store.finalize()
    return SegmentedRRCollection(
        seg_store, root_groups, graph.num_nodes, c
    )


# ----------------------------------------------------------------------
# Incremental repair (delta-updates on graph mutation)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RepairResult:
    """Outcome of one repair pass over a collection.

    ``affected`` lists the RR-set ids that were resampled (empty when the
    delta touched no sampled membership, or on a full resample, where the
    notion of "the same set" no longer applies).
    """

    affected: np.ndarray
    sets_total: int
    full_resample: bool = False

    @property
    def sets_repaired(self) -> int:
        if self.full_resample:
            return self.sets_total
        return int(self.affected.size)

    @property
    def repair_ratio(self) -> float:
        if self.sets_total == 0:
            return 0.0
        return self.sets_repaired / self.sets_total


def repair_seed_sequence(
    entropy: int, from_version: int, to_version: int
) -> np.random.SeedSequence:
    """The seed-stream law for regenerated RR sets (DESIGN.md §9).

    Repair streams are keyed on the objective's original sampling entropy
    plus the ``(from, to)`` graph-version pair, under a fixed
    domain-separation tag. Two consequences: (1) repairing the same
    mutation twice is deterministic, so repaired objectives stay
    reproducible and cacheable; (2) the stream never collides with the
    original sampling stream or with the repair stream of any other
    version step, so regenerated sets are statistically independent of
    everything they splice into.
    """
    return np.random.SeedSequence(
        [REPAIR_STREAM_TAG, int(entropy), int(from_version), int(to_version)]
    )


def affected_rr_sets(
    collection: "RRCollection | SegmentedRRCollection", delta: GraphDelta
) -> np.ndarray:
    """RR-set ids whose sampled law changed under ``delta`` (sorted).

    The affected-set rule: the reverse BFS examines arc ``(u, v)`` iff it
    pops ``v`` — transpose out-arcs of ``v`` are original in-arcs of
    ``v`` — so a set's sampled trajectory can involve a changed arc only
    if the set contains that arc's *target*. This covers probability
    increases too: a set could newly traverse ``(u, v)`` only at a pop of
    ``v``, which requires ``v`` to already be a member (the "one-level
    frontier probe" of a head node is therefore subsumed by the
    membership gather). One boolean gather over the packed entries — no
    per-set work.
    """
    if delta.num_arcs == 0:
        return np.zeros(0, dtype=np.int64)
    mask = np.zeros(collection.num_nodes, dtype=bool)
    mask[delta.targets] = True
    if isinstance(collection, SegmentedRRCollection):
        return np.flatnonzero(collection.store.hit_rows(mask))
    rows = collection.entry_rows()[mask[collection.set_indices]]
    return np.unique(rows)


def repair_rr_collection(
    collection: "RRCollection | SegmentedRRCollection",
    graph: Graph,
    delta: GraphDelta,
    seed: SeedLike = None,
    *,
    workers: Optional[int] = None,
    exec_backend: Optional[str] = None,
    kernel: Optional[str] = None,
) -> RepairResult:
    """Splice freshly resampled replacements for the affected RR sets.

    Identifies the sets whose membership touches a changed arc's target
    (:func:`affected_rr_sets`), regenerates *only those* from their
    original roots on the mutated graph via the batched engine, and
    splices the replacements into the packed arrays in place
    (:func:`repro.utils.csr.splice_packed`). Roots, root groups and group
    counts are unchanged, so every ``f_i`` estimator keeps its
    stratification. A delta touching no sampled membership leaves the
    collection bitwise identical and performs zero sampling.

    The caller owns the seed-stream law — objectives derive ``seed`` via
    :func:`repair_seed_sequence` so repairs are reproducible.
    """
    affected = affected_rr_sets(collection, delta)
    total = collection.num_sets
    if affected.size == 0:
        return RepairResult(affected, total)
    rng = as_generator(seed)
    if isinstance(collection, SegmentedRRCollection):
        # Same root order and draw law as the flat splice (affected ids
        # ascending, one batched resample), then rewrite only the owning
        # segments — replacement contents are bitwise those of the flat
        # path.
        roots = collection.store.roots_of(affected)
        sub_indptr, sub_indices = sample_rr_sets_batch(
            graph.transpose_adjacency(),
            roots,
            rng,
            workers=workers,
            exec_backend=exec_backend,
            kernel=kernel,
        )
        collection.store.replace_sets(affected, sub_indptr, sub_indices)
        return RepairResult(affected, total)
    roots = collection.set_indices[collection.set_indptr[affected]]
    sub_indptr, sub_indices = sample_rr_sets_batch(
        graph.transpose_adjacency(),
        roots,
        rng,
        workers=workers,
        exec_backend=exec_backend,
        kernel=kernel,
    )
    collection.set_indptr, collection.set_indices = splice_packed(
        collection.set_indptr,
        collection.set_indices,
        affected,
        sub_indptr,
        sub_indices,
    )
    collection._row_ids = None
    return RepairResult(affected, total)
