"""Reverse-influence sampling (RIS) [Borgs et al. 2014].

A *reverse-reachable (RR) set* for root ``r`` is the random set of nodes
that reach ``r`` through live edges, where each arc ``(u, v)`` is live
independently with probability ``p(u, v)``. The key identity: for any seed
set ``S``, ``P[r activated by S] = P[S intersects RR(r)]``. Averaging the
indicator over many RR sets therefore estimates activation probabilities
— and, with roots drawn per group, the group utilities ``f_i(S)`` needed
by BSM. Coverage of a fixed RR-set collection is monotone submodular in
``S``, so the whole greedy machinery applies to the estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import GroupPartitionError
from repro.graphs.graph import Graph
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int


@dataclass
class RRCollection:
    """A bag of RR sets plus the group of each root.

    Attributes
    ----------
    sets:
        ``sets[j]`` is the node array of the ``j``-th RR set.
    root_groups:
        Group label of the root of each RR set.
    num_nodes, num_groups:
        Ground-set dimensions (for building objectives).
    group_counts:
        Number of RR sets rooted in each group; the per-group estimate of
        ``f_i(S)`` is (covered sets with group-i root) / ``group_counts[i]``.
    """

    sets: list[np.ndarray]
    root_groups: np.ndarray
    num_nodes: int
    num_groups: int

    def __post_init__(self) -> None:
        self.root_groups = np.asarray(self.root_groups, dtype=np.int64)
        if len(self.sets) != self.root_groups.size:
            raise ValueError("sets and root_groups must have equal length")
        counts = np.bincount(self.root_groups, minlength=self.num_groups)
        if np.any(counts == 0):
            raise GroupPartitionError(
                "every group needs at least one RR set for its f_i estimate"
            )
        self.group_counts = counts

    @property
    def num_sets(self) -> int:
        return len(self.sets)

    def coverage(self, seeds: np.ndarray | list[int]) -> np.ndarray:
        """Per-group fraction of RR sets hit by ``seeds`` (= ``f_i`` estimate)."""
        seed_mask = np.zeros(self.num_nodes, dtype=bool)
        seed_mask[np.asarray(list(seeds), dtype=np.int64)] = True
        hit = np.fromiter(
            (bool(seed_mask[s].any()) if s.size else False for s in self.sets),
            dtype=bool,
            count=self.num_sets,
        )
        covered = np.bincount(
            self.root_groups[hit], minlength=self.num_groups
        ).astype(float)
        return covered / self.group_counts


def sample_rr_set(
    transpose_adjacency: tuple[np.ndarray, np.ndarray, np.ndarray],
    root: int,
    rng: np.random.Generator,
    scratch: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Sample one RR set by a randomized reverse BFS from ``root``.

    ``transpose_adjacency`` is the CSR triple of the *transpose* graph, so
    walking its out-arcs follows original arcs backwards. ``scratch`` is an
    optional reusable visited buffer (cleared on entry) to avoid an O(n)
    allocation per sample.
    """
    indptr, indices, probs = transpose_adjacency
    n = indptr.size - 1
    if not 0 <= root < n:
        raise IndexError(f"root {root} out of range [0, {n})")
    if scratch is None:
        visited = np.zeros(n, dtype=bool)
    else:
        visited = scratch
        visited[:] = False
    visited[root] = True
    out = [root]
    frontier = [root]
    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            lo, hi = indptr[u], indptr[u + 1]
            if lo == hi:
                continue
            hits = rng.random(hi - lo) < probs[lo:hi]
            for v in indices[lo:hi][hits]:
                if not visited[v]:
                    visited[v] = True
                    out.append(int(v))
                    next_frontier.append(int(v))
        frontier = next_frontier
    return np.asarray(out, dtype=np.int64)


def sample_rr_collection(
    graph: Graph,
    num_samples: int,
    *,
    seed: SeedLike = None,
    stratified: bool = True,
) -> RRCollection:
    """Sample an :class:`RRCollection` from a grouped graph.

    Parameters
    ----------
    num_samples:
        Total number of RR sets.
    stratified:
        ``True`` (default) splits the budget evenly across groups so every
        ``f_i`` estimate has comparable variance — important because the
        fairness objective is driven by the *smallest* (often rarest)
        group. ``False`` draws roots uniformly from all users, matching
        plain IMM.
    """
    check_positive_int(num_samples, "num_samples")
    rng = as_generator(seed)
    labels = graph.groups
    c = graph.num_groups
    transpose = graph.transpose().out_adjacency()
    scratch = np.zeros(graph.num_nodes, dtype=bool)
    sets: list[np.ndarray] = []
    root_groups: list[int] = []
    if stratified:
        members = [np.flatnonzero(labels == i) for i in range(c)]
        base, rem = divmod(num_samples, c)
        for i in range(c):
            quota = base + (1 if i < rem else 0)
            quota = max(quota, 1)
            roots = members[i][rng.integers(0, members[i].size, size=quota)]
            for r in roots:
                sets.append(sample_rr_set(transpose, int(r), rng, scratch))
                root_groups.append(i)
    else:
        roots = rng.integers(0, graph.num_nodes, size=num_samples)
        for r in roots:
            sets.append(sample_rr_set(transpose, int(r), rng, scratch))
            root_groups.append(int(labels[r]))
        # Guarantee at least one RR set per group (RRCollection requires it).
        present = np.bincount(np.asarray(root_groups), minlength=c)
        for i in np.flatnonzero(present == 0):
            members = np.flatnonzero(labels == i)
            r = int(members[rng.integers(0, members.size)])
            sets.append(sample_rr_set(transpose, r, rng, scratch))
            root_groups.append(int(i))
    return RRCollection(
        sets=sets,
        root_groups=np.asarray(root_groups, dtype=np.int64),
        num_nodes=graph.num_nodes,
        num_groups=c,
    )
