"""Independent-cascade (IC) diffusion model [Kempe et al. 2003].

A cascade starts from a seed set ``S``. When node ``u`` becomes active it
gets one chance to activate each inactive out-neighbour ``v``, succeeding
independently with the edge's propagation probability ``p(u, v)``. The
influence spread is the expected number of eventually-active nodes; the
paper's utility ``f_u(S)`` is the probability that user ``u`` is activated.

Exact spread computation is #P-hard [Chen et al. 2010], so this module
provides Monte-Carlo estimation: the paper uses 10,000 simulations to
evaluate final solutions (Section 5.2).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.influence.engine import cascade_activation_counts
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int


def prepare_seeds(graph: Graph, seeds: Sequence[int]) -> np.ndarray:
    """Validate and normalise a seed set once, ahead of many cascades.

    Returns the sorted, deduplicated int64 seed array. The Monte-Carlo
    estimators call this a single time and hand the prepared array to the
    batched engine instead of re-validating inside each of the paper's
    10,000 ``simulate_cascade`` calls.
    """
    arr = np.asarray(list(seeds), dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= graph.num_nodes):
        bad = arr[(arr < 0) | (arr >= graph.num_nodes)][0]
        raise IndexError(f"seed {bad} out of range [0, {graph.num_nodes})")
    return np.unique(arr)


def simulate_cascade(
    graph: Graph,
    seeds: Sequence[int],
    rng: np.random.Generator,
) -> np.ndarray:
    """Run one IC cascade; returns the boolean activation vector.

    Edges flip their coins lazily during the BFS — equivalent to the
    live-edge interpretation (each edge is live independently with its
    probability, activation = reachability from the seeds via live edges).
    """
    indptr, indices, probs = graph.out_adjacency()
    active = np.zeros(graph.num_nodes, dtype=bool)
    frontier: list[int] = []
    for s in seeds:
        s = int(s)
        if not 0 <= s < graph.num_nodes:
            raise IndexError(f"seed {s} out of range [0, {graph.num_nodes})")
        if not active[s]:
            active[s] = True
            frontier.append(s)
    while frontier:
        next_frontier: list[int] = []
        for u in frontier:
            lo, hi = indptr[u], indptr[u + 1]
            if lo == hi:
                continue
            nbrs = indices[lo:hi]
            edge_p = probs[lo:hi]
            hits = rng.random(hi - lo) < edge_p
            for v in nbrs[hits]:
                if not active[v]:
                    active[v] = True
                    next_frontier.append(int(v))
        frontier = next_frontier
    return active


def simulate_cascades_batch(
    graph: Graph,
    seeds: Sequence[int] | np.ndarray,
    num_cascades: int,
    rng: np.random.Generator,
    *,
    workers: Optional[int] = None,
    exec_backend: Optional[str] = None,
    kernel: Optional[str] = None,
) -> np.ndarray:
    """Run ``num_cascades`` IC cascades from ``seeds`` simultaneously.

    All cascades advance level by level through the shared frontier
    engine (:mod:`repro.influence.engine`); seeds are validated once.
    Returns the per-node activation-count vector: entry ``v`` is the
    number of cascades in which ``v`` became active — the sufficient
    statistic for every Monte-Carlo spread estimate. ``workers`` selects
    the pool path (bitwise invariant to worker count, ``exec_backend``
    and ``kernel``; ``None`` keeps the in-line serial stream).
    """
    check_positive_int(num_cascades, "num_cascades")
    prepared = prepare_seeds(graph, seeds)
    return cascade_activation_counts(
        graph.out_adjacency(),
        prepared,
        num_cascades,
        rng,
        workers=workers,
        exec_backend=exec_backend,
        kernel=kernel,
    )


def monte_carlo_group_spread(
    graph: Graph,
    seeds: Sequence[int],
    num_simulations: int = 1000,
    *,
    seed: SeedLike = None,
    workers: Optional[int] = None,
    exec_backend: Optional[str] = None,
    kernel: Optional[str] = None,
) -> np.ndarray:
    """Estimate ``(f_1(S), ..., f_c(S))`` — per-group average activation
    probabilities — by averaging ``num_simulations`` batched cascades."""
    check_positive_int(num_simulations, "num_simulations")
    rng = as_generator(seed)
    sizes = graph.group_sizes().astype(float)
    counts = simulate_cascades_batch(
        graph, seeds, num_simulations, rng, workers=workers,
        exec_backend=exec_backend, kernel=kernel,
    )
    totals = np.bincount(
        graph.groups, weights=counts, minlength=graph.num_groups
    )
    return totals / (sizes * num_simulations)


def monte_carlo_spread(
    graph: Graph,
    seeds: Sequence[int],
    num_simulations: int = 1000,
    *,
    seed: SeedLike = None,
    workers: Optional[int] = None,
    exec_backend: Optional[str] = None,
    kernel: Optional[str] = None,
) -> float:
    """Estimate the normalised spread ``f(S)`` (expected active fraction)."""
    check_positive_int(num_simulations, "num_simulations")
    rng = as_generator(seed)
    counts = simulate_cascades_batch(
        graph, seeds, num_simulations, rng, workers=workers,
        exec_backend=exec_backend, kernel=kernel,
    )
    return float(counts.sum()) / (num_simulations * graph.num_nodes)


def exact_group_spread(
    graph: Graph,
    seeds: Sequence[int],
    *,
    max_nodes: int = 20,
) -> np.ndarray:
    """Exact per-group activation probabilities by live-edge enumeration.

    Enumerates all ``2^|E|`` live-edge outcomes — #P-hard in general, so a
    guard refuses graphs with more than ``max_nodes`` nodes or 20 arcs.
    Exists to validate the Monte-Carlo and RIS estimators in tests.
    """
    arcs = list(graph.edges())
    if graph.num_nodes > max_nodes or len(arcs) > 20:
        raise ValueError(
            "exact_group_spread enumerates 2^|arcs| outcomes; instance too large"
        )
    labels = graph.groups
    c = graph.num_groups
    sizes = graph.group_sizes().astype(float)
    seeds = [int(s) for s in seeds]
    totals = np.zeros(c, dtype=float)
    n_arcs = len(arcs)
    for mask in range(1 << n_arcs):
        prob = 1.0
        succ: dict[int, list[int]] = {}
        for bit, (u, v, p) in enumerate(arcs):
            if mask >> bit & 1:
                prob *= p
                succ.setdefault(u, []).append(v)
            else:
                prob *= 1.0 - p
        if prob == 0.0:
            continue
        active = np.zeros(graph.num_nodes, dtype=bool)
        stack = list(seeds)
        for s in seeds:
            active[s] = True
        while stack:
            u = stack.pop()
            for v in succ.get(u, ()):
                if not active[v]:
                    active[v] = True
                    stack.append(v)
        totals += prob * np.bincount(labels[active], minlength=c)
    return totals / sizes
