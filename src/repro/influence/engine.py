"""Batched level-synchronous frontier engine for influence sampling.

Both halves of the influence subsystem are randomized reachability
problems over a CSR graph: an RR set is the set of nodes that reach a
root through live edges of the *transpose* graph, and an IC cascade is
the set of nodes reached from a seed set through live edges of the
forward graph. The scalar implementations (`sample_rr_set`,
`simulate_cascade`) pay one Python-level BFS per sample; at the paper's
budgets (10,000 evaluation cascades, 10^5-ish RR sets) that loop is the
dominant cost of every influence figure.

This module runs *many* samples through one BFS. All in-flight samples
share a combined frontier of ``(instance, node)`` pairs encoded as flat
``instance * n + node`` keys; each level expands the whole frontier
through the CSR arrays with one ``np.repeat``/fancy-indexing gather,
flips every frontier edge's coin in a single ``rng.random`` draw, and
dedups arrivals against a flat visited buffer — no per-node Python work.
Memory is bounded by chunking the instances so the visited buffer stays
under ``max_keys`` bools regardless of ``n`` or the sample count.
"""

from __future__ import annotations

import numpy as np

from repro.utils.csr import gather_csr_slices

Adjacency = tuple[np.ndarray, np.ndarray, np.ndarray]

#: Visited-buffer budget (flat ``instance * n + node`` bool keys) per
#: chunk — 32M keys = 32 MB, small enough to live in cache-friendly
#: territory while keeping chunks large enough to amortize level setup.
MAX_FLAT_KEYS = 1 << 25


def _reachability_chunk(
    adjacency: Adjacency,
    start_keys: np.ndarray,
    num_instances: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """All ``instance * n + node`` keys reachable from ``start_keys``.

    One level-synchronous BFS over every instance at once. Every frontier
    edge draws its coin from a single ``rng.random`` call per level (the
    scalar BFS draws per frontier *node*; per level is the batched
    equivalent — the marginal law of each edge coin is identical).
    """
    indptr, indices, probs = adjacency
    n = indptr.size - 1
    visited = np.zeros(num_instances * n, dtype=bool)
    start_keys = np.unique(start_keys)
    visited[start_keys] = True
    reached = [start_keys]
    frontier = start_keys
    while frontier.size:
        positions, owners = gather_csr_slices(indptr, frontier % n)
        if positions.size == 0:
            break
        live = rng.random(positions.size) < probs[positions]
        keys = (frontier // n)[owners[live]] * n + indices[positions[live]]
        keys = keys[~visited[keys]]
        if keys.size == 0:
            break
        # np.unique both dedups same-level arrivals and sorts the new
        # frontier by (instance, node), keeping expansion order canonical.
        keys = np.unique(keys)
        visited[keys] = True
        reached.append(keys)
        frontier = keys
    return np.concatenate(reached) if len(reached) > 1 else reached[0]


def batched_reachability(
    adjacency: Adjacency,
    start_ids: np.ndarray,
    start_nodes: np.ndarray,
    num_instances: int,
    rng: np.random.Generator,
    *,
    max_keys: int = MAX_FLAT_KEYS,
) -> tuple[np.ndarray, np.ndarray]:
    """Randomized multi-instance reachability; returns ``(ids, nodes)``.

    ``start_ids``/``start_nodes`` list the BFS sources as parallel arrays
    (an instance may have several sources — a cascade's seed set). The
    result enumerates every reached ``(instance, node)`` pair, sources
    included, each pair exactly once. Instances are processed in chunks
    of ``max_keys // n`` so the visited buffer never exceeds ``max_keys``
    bools.
    """
    indptr = adjacency[0]
    n = indptr.size - 1
    if start_ids.size != start_nodes.size:
        raise ValueError("start_ids and start_nodes must have equal length")
    if num_instances == 0 or start_ids.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    chunk = max(int(max_keys) // max(n, 1), 1)
    if num_instances <= chunk:
        keys = _reachability_chunk(
            adjacency, start_ids * n + start_nodes, num_instances, rng
        )
        return keys // n, keys % n
    ids_parts: list[np.ndarray] = []
    node_parts: list[np.ndarray] = []
    for lo in range(0, num_instances, chunk):
        hi = min(lo + chunk, num_instances)
        in_chunk = (start_ids >= lo) & (start_ids < hi)
        keys = _reachability_chunk(
            adjacency,
            (start_ids[in_chunk] - lo) * n + start_nodes[in_chunk],
            hi - lo,
            rng,
        )
        ids_parts.append(keys // n + lo)
        node_parts.append(keys % n)
    return np.concatenate(ids_parts), np.concatenate(node_parts)


def sample_rr_sets_batch(
    transpose_adjacency: Adjacency,
    roots: np.ndarray,
    rng: np.random.Generator,
    *,
    max_keys: int = MAX_FLAT_KEYS,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample one RR set per root, all through one batched reverse BFS.

    ``transpose_adjacency`` is the CSR triple of the transpose graph (so
    out-arcs walk original arcs backwards). Returns the packed pair
    ``(set_indptr, set_indices)``: sample ``j``'s nodes occupy
    ``set_indices[set_indptr[j]:set_indptr[j + 1]]``, root first.
    """
    roots = np.asarray(roots, dtype=np.int64)
    n = transpose_adjacency[0].size - 1
    if roots.size and (roots.min() < 0 or roots.max() >= n):
        bad = roots[(roots < 0) | (roots >= n)][0]
        raise IndexError(f"root {bad} out of range [0, {n})")
    sample_ids, nodes = batched_reachability(
        transpose_adjacency,
        np.arange(roots.size, dtype=np.int64),
        roots,
        roots.size,
        rng,
        max_keys=max_keys,
    )
    order = np.argsort(sample_ids, kind="stable")
    counts = np.bincount(sample_ids, minlength=roots.size)
    set_indptr = np.zeros(roots.size + 1, dtype=np.int64)
    np.cumsum(counts, out=set_indptr[1:])
    return set_indptr, nodes[order]


def cascade_activation_counts(
    adjacency: Adjacency,
    seeds: np.ndarray,
    num_cascades: int,
    rng: np.random.Generator,
    *,
    max_keys: int = MAX_FLAT_KEYS,
) -> np.ndarray:
    """Per-node activation counts over ``num_cascades`` batched IC cascades.

    Every cascade starts from the same (already validated, deduplicated)
    ``seeds`` and runs through the shared frontier engine; the result's
    entry ``v`` counts the cascades in which ``v`` became active. That is
    the sufficient statistic for both the per-group Monte-Carlo spread
    (``bincount`` over group labels) and the scalar spread (one sum) —
    the full ``(cascade, node)`` activation matrix never materializes.
    """
    n = adjacency[0].size - 1
    counts = np.zeros(n, dtype=np.int64)
    if seeds.size == 0 or num_cascades == 0:
        return counts
    chunk = max(int(max_keys) // max(n, 1), 1)
    for lo in range(0, num_cascades, chunk):
        m = min(chunk, num_cascades - lo)
        _, nodes = batched_reachability(
            adjacency,
            np.repeat(np.arange(m, dtype=np.int64), seeds.size),
            np.tile(seeds, m),
            m,
            rng,
            max_keys=max_keys,
        )
        counts += np.bincount(nodes, minlength=n)
    return counts
