"""Batched level-synchronous frontier engine for influence sampling.

Both halves of the influence subsystem are randomized reachability
problems over a CSR graph: an RR set is the set of nodes that reach a
root through live edges of the *transpose* graph, and an IC cascade is
the set of nodes reached from a seed set through live edges of the
forward graph. The scalar implementations (`sample_rr_set`,
`simulate_cascade`) pay one Python-level BFS per sample; at the paper's
budgets (10,000 evaluation cascades, 10^5-ish RR sets) that loop is the
dominant cost of every influence figure.

This module runs *many* samples through one BFS. All in-flight samples
share a combined frontier of ``(instance, node)`` pairs encoded as flat
``instance * n + node`` keys; each level expands the whole frontier
through the CSR arrays with one ``np.repeat``/fancy-indexing gather,
flips every frontier edge's coin in a single ``rng.random`` draw, and
dedups arrivals against a flat visited buffer — no per-node Python work.
Memory is bounded by chunking the instances so the visited buffer stays
under ``max_keys`` bools regardless of ``n`` or the sample count.

Multi-core execution: every entry point takes ``workers``. ``None`` (the
default) keeps the legacy in-line stream — one caller-supplied generator
drawn across chunks sequentially, bit-for-bit the pre-parallel
behaviour. Any integer ``workers >= 1`` switches to the *unit
decomposition*: instances are split into fixed work units (sized by the
visited-buffer cap and :data:`repro.utils.parallel.DEFAULT_UNITS`, never
by the worker count), each unit draws from its own
``SeedSequence.spawn`` child stream, and units are dispatched over a
persistent worker pool (:func:`repro.utils.parallel.parallel_map`).
``exec_backend`` picks the pool flavour — ``"thread"`` (default) shares
the CSR triple zero-copy and releases the GIL inside the kernels,
``"process"`` ships it through ``multiprocessing.shared_memory``,
``"serial"`` runs the units in-process. Because the decomposition and
the streams depend only on the inputs, results are bitwise-identical
for every worker count and every backend — including ``workers=1``,
which runs the same units serially in-process.

The chunk BFS itself dispatches through :mod:`repro.kernels`: ``kernel``
selects the implementation set (baseline / tightened numpy / compiled
numba), all bitwise-equal by contract.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.kernels import get_kernel
from repro.utils.csr import concat_packed
from repro.utils.parallel import (
    WorkerContext,
    parallel_imap,
    parallel_map,
    spawn_seed_sequences,
    split_ranges,
    unit_size_for,
)

Adjacency = tuple[np.ndarray, np.ndarray, np.ndarray]

#: Visited-buffer budget (flat ``instance * n + node`` bool keys) per
#: chunk — 32M keys = 32 MB, small enough to live in cache-friendly
#: territory while keeping chunks large enough to amortize level setup.
MAX_FLAT_KEYS = 1 << 25


def _reachability_chunk(
    adjacency: Adjacency,
    start_keys: np.ndarray,
    num_instances: int,
    rng: np.random.Generator,
    kernel: Optional[str] = None,
) -> np.ndarray:
    """All ``instance * n + node`` keys reachable from ``start_keys``.

    One level-synchronous BFS over every instance at once, dispatched to
    the active kernel set (see :mod:`repro.kernels`; the reference
    semantics live in :func:`repro.kernels.baseline.reachability_chunk`).
    """
    return get_kernel(kernel).reachability_chunk(
        adjacency, start_keys, num_instances, rng
    )


def _reachability_chunk_sparse(
    adjacency: Adjacency,
    start_keys: np.ndarray,
    rng: np.random.Generator,
    kernel: Optional[str] = None,
) -> np.ndarray:
    """:func:`_reachability_chunk` without the dense visited buffer.

    Memory is O(reached keys) — the out-of-core tier's sampler. Same
    draw law as the dense chunk (see
    :func:`repro.kernels.baseline.reachability_chunk_sparse`).
    """
    return get_kernel(kernel).reachability_chunk_sparse(
        adjacency, start_keys, rng
    )


def _pack_chunk_keys(
    keys: np.ndarray,
    num_instances: int,
    n: int,
    kernel: Optional[str] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Pack one chunk's reached keys into a ``(set_indptr, set_indices)``.

    Dispatches to the active kernel set — the optimized sets run the
    divmod and the stable argsort on narrow dtypes when the flat key
    space allows; outputs are bitwise those of the baseline pack.
    """
    return get_kernel(kernel).pack_chunk_keys(keys, num_instances, n)


def _instance_units(
    num_instances: int, n: int, max_keys: int
) -> list[tuple[int, int]]:
    """Fixed work-unit ranges for the parallel decomposition.

    Unit size honours the visited-buffer cap (``max_keys // n``) and the
    global unit target; it depends only on the inputs, so every worker
    count sees the same units (the determinism contract).
    """
    cap = max(int(max_keys) // max(n, 1), 1)
    return split_ranges(num_instances, unit_size_for(num_instances, cap=cap))


def _reachability_unit(ctx: WorkerContext, task: tuple) -> np.ndarray:
    """Worker: one reachability unit on the shared CSR triple."""
    start_keys, num_instances, seed = task
    return _reachability_chunk(
        ctx.arrays,
        start_keys,
        num_instances,
        np.random.default_rng(seed),
        kernel=ctx.payload,
    )


def _rr_pack_unit(
    ctx: WorkerContext, task: tuple
) -> tuple[np.ndarray, np.ndarray]:
    """Worker: sample one unit's RR sets and CSR-pack them locally."""
    roots, seed = task
    indptr = ctx.arrays[0]
    n = indptr.size - 1
    keys = _reachability_chunk(
        ctx.arrays,
        np.arange(roots.size, dtype=np.int64) * n + roots,
        roots.size,
        np.random.default_rng(seed),
        kernel=ctx.payload,
    )
    return _pack_chunk_keys(keys, roots.size, n, kernel=ctx.payload)


def _cascade_count_unit(ctx: WorkerContext, task: tuple) -> np.ndarray:
    """Worker: per-node activation counts of one unit of cascades."""
    seeds, num_cascades, seed = task
    indptr = ctx.arrays[0]
    n = indptr.size - 1
    keys = _reachability_chunk(
        ctx.arrays,
        np.repeat(np.arange(num_cascades, dtype=np.int64), seeds.size) * n
        + np.tile(seeds, num_cascades),
        num_cascades,
        np.random.default_rng(seed),
        kernel=ctx.payload,
    )
    return np.bincount(keys % n, minlength=n)


def batched_reachability(
    adjacency: Adjacency,
    start_ids: np.ndarray,
    start_nodes: np.ndarray,
    num_instances: int,
    rng: np.random.Generator,
    *,
    max_keys: int = MAX_FLAT_KEYS,
    workers: Optional[int] = None,
    exec_backend: Optional[str] = None,
    kernel: Optional[str] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Randomized multi-instance reachability; returns ``(ids, nodes)``.

    ``start_ids``/``start_nodes`` list the BFS sources as parallel arrays
    (an instance may have several sources — a cascade's seed set). The
    result enumerates every reached ``(instance, node)`` pair, sources
    included, each pair exactly once. Instances are processed in chunks
    of ``max_keys // n`` so the visited buffer never exceeds ``max_keys``
    bools. With ``workers`` set, the chunks become per-unit tasks with
    spawned RNG streams, dispatched over the persistent worker pool of
    the chosen ``exec_backend`` (see the module docstring for the
    determinism contract).
    """
    indptr = adjacency[0]
    n = indptr.size - 1
    if start_ids.size != start_nodes.size:
        raise ValueError("start_ids and start_nodes must have equal length")
    if num_instances == 0 or start_ids.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    if workers is not None:
        units = _instance_units(num_instances, n, max_keys)
        seeds = spawn_seed_sequences(rng, len(units))
        tasks = []
        for (lo, hi), seq in zip(units, seeds):
            in_unit = (start_ids >= lo) & (start_ids < hi)
            tasks.append(
                (
                    (start_ids[in_unit] - lo) * n + start_nodes[in_unit],
                    hi - lo,
                    seq,
                )
            )
        parts = parallel_map(
            _reachability_unit,
            tasks,
            workers=workers,
            shared=adjacency,
            payload=kernel,
            backend=exec_backend,
        )
        ids_parts = [keys // n + lo for (lo, _), keys in zip(units, parts)]
        node_parts = [keys % n for keys in parts]
        return np.concatenate(ids_parts), np.concatenate(node_parts)
    chunk = max(int(max_keys) // max(n, 1), 1)
    if num_instances <= chunk:
        keys = _reachability_chunk(
            adjacency,
            start_ids * n + start_nodes,
            num_instances,
            rng,
            kernel=kernel,
        )
        return keys // n, keys % n
    ids_parts: list[np.ndarray] = []
    node_parts: list[np.ndarray] = []
    for lo in range(0, num_instances, chunk):
        hi = min(lo + chunk, num_instances)
        in_chunk = (start_ids >= lo) & (start_ids < hi)
        keys = _reachability_chunk(
            adjacency,
            (start_ids[in_chunk] - lo) * n + start_nodes[in_chunk],
            hi - lo,
            rng,
            kernel=kernel,
        )
        ids_parts.append(keys // n + lo)
        node_parts.append(keys % n)
    return np.concatenate(ids_parts), np.concatenate(node_parts)


def sample_rr_sets_batch(
    transpose_adjacency: Adjacency,
    roots: np.ndarray,
    rng: np.random.Generator,
    *,
    max_keys: int = MAX_FLAT_KEYS,
    workers: Optional[int] = None,
    exec_backend: Optional[str] = None,
    kernel: Optional[str] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample one RR set per root, all through one batched reverse BFS.

    ``transpose_adjacency`` is the CSR triple of the transpose graph (so
    out-arcs walk original arcs backwards). Returns the packed pair
    ``(set_indptr, set_indices)``: sample ``j``'s nodes occupy
    ``set_indices[set_indptr[j]:set_indptr[j + 1]]``, root first. With
    ``workers`` set, root ranges become pool tasks — each unit samples
    *and packs* its sets, the parent concatenates the packed pairs in
    unit order, so the result is bitwise-identical for every worker
    count.
    """
    roots = np.asarray(roots, dtype=np.int64)
    n = transpose_adjacency[0].size - 1
    if roots.size and (roots.min() < 0 or roots.max() >= n):
        bad = roots[(roots < 0) | (roots >= n)][0]
        raise IndexError(f"root {bad} out of range [0, {n})")
    if workers is not None and roots.size:
        units = _instance_units(roots.size, n, max_keys)
        seeds = spawn_seed_sequences(rng, len(units))
        tasks = [
            (roots[lo:hi], seq) for (lo, hi), seq in zip(units, seeds)
        ]
        parts = parallel_map(
            _rr_pack_unit,
            tasks,
            workers=workers,
            shared=transpose_adjacency,
            payload=kernel,
            backend=exec_backend,
        )
        return concat_packed(parts)
    sample_ids, nodes = batched_reachability(
        transpose_adjacency,
        np.arange(roots.size, dtype=np.int64),
        roots,
        roots.size,
        rng,
        max_keys=max_keys,
        kernel=kernel,
    )
    order = np.argsort(sample_ids, kind="stable")
    counts = np.bincount(sample_ids, minlength=roots.size)
    set_indptr = np.zeros(roots.size + 1, dtype=np.int64)
    np.cumsum(counts, out=set_indptr[1:])
    return set_indptr, nodes[order]


def sample_rr_sets_packed_units(
    transpose_adjacency: Adjacency,
    roots: np.ndarray,
    rng: np.random.Generator,
    *,
    max_keys: int = MAX_FLAT_KEYS,
    workers: int = 1,
    exec_backend: Optional[str] = None,
    kernel: Optional[str] = None,
    window: Optional[int] = None,
):
    """Yield packed ``(set_indptr, set_indices)`` pairs, one per work unit.

    The streaming twin of the ``workers`` path of
    :func:`sample_rr_sets_batch`: the *same* unit decomposition and
    spawned seed streams, dispatched through
    :func:`repro.utils.parallel.parallel_imap` with a bounded in-flight
    window, yielding each unit's locally packed pair in unit order.
    Concatenating the yielded pairs reproduces
    ``sample_rr_sets_batch(..., workers=w)`` bit for bit — which is how
    the out-of-core tier appends worker-sampled chunks into segments
    without ever materializing the flat collection.
    """
    roots = np.asarray(roots, dtype=np.int64)
    n = transpose_adjacency[0].size - 1
    if roots.size and (roots.min() < 0 or roots.max() >= n):
        bad = roots[(roots < 0) | (roots >= n)][0]
        raise IndexError(f"root {bad} out of range [0, {n})")
    if roots.size == 0:
        return
    units = _instance_units(roots.size, n, max_keys)
    seeds = spawn_seed_sequences(rng, len(units))
    tasks = [(roots[lo:hi], seq) for (lo, hi), seq in zip(units, seeds)]
    yield from parallel_imap(
        _rr_pack_unit,
        tasks,
        workers=workers,
        shared=transpose_adjacency,
        payload=kernel,
        backend=exec_backend,
        window=window,
    )


def sample_rr_sets_stream(
    transpose_adjacency: Adjacency,
    roots: np.ndarray,
    rng: np.random.Generator,
    *,
    max_keys: int = MAX_FLAT_KEYS,
    chunk_instances: Optional[int] = None,
    kernel: Optional[str] = None,
):
    """Yield packed ``(set_indptr, set_indices)`` pairs chunk by chunk.

    The streaming twin of the serial :func:`sample_rr_sets_batch`: the
    out-of-core path flushes each yielded chunk into a byte-budgeted
    segment instead of concatenating everything into one flat pair, so
    peak memory is one chunk, not the whole collection.

    With ``chunk_instances=None`` the chunk law is the flat serial law
    (``max_keys // n`` instances per chunk, dense visited buffer) and
    ``concat_packed`` over the yielded pairs is bitwise-identical to
    ``sample_rr_sets_batch(..., workers=None)`` — per-chunk stable
    argsorts concatenate to the global stable argsort because instance
    ids are grouped by chunk. An explicit ``chunk_instances`` switches to
    the sparse visited structure (:func:`_reachability_chunk_sparse`),
    whose memory is O(reached keys) instead of O(instances · n): the
    draws still match the flat law whenever both paths process the roots
    in a single chunk (``roots.size <= min(chunk_instances,
    max_keys // n)``), which covers the bitwise-pinned small datasets;
    large graphs get a deterministic law of their own.
    """
    roots = np.asarray(roots, dtype=np.int64)
    n = transpose_adjacency[0].size - 1
    if roots.size and (roots.min() < 0 or roots.max() >= n):
        bad = roots[(roots < 0) | (roots >= n)][0]
        raise IndexError(f"root {bad} out of range [0, {n})")
    if roots.size == 0:
        return
    if chunk_instances is None:
        chunk = max(int(max_keys) // max(n, 1), 1)
        sparse = False
    else:
        chunk = max(int(chunk_instances), 1)
        sparse = True
    for lo in range(0, roots.size, chunk):
        hi = min(lo + chunk, roots.size)
        start_keys = (
            np.arange(hi - lo, dtype=np.int64) * n + roots[lo:hi]
        )
        if sparse:
            keys = _reachability_chunk_sparse(
                transpose_adjacency, start_keys, rng, kernel=kernel
            )
        else:
            keys = _reachability_chunk(
                transpose_adjacency, start_keys, hi - lo, rng, kernel=kernel
            )
        yield _pack_chunk_keys(keys, hi - lo, n, kernel=kernel)


def cascade_activation_counts(
    adjacency: Adjacency,
    seeds: np.ndarray,
    num_cascades: int,
    rng: np.random.Generator,
    *,
    max_keys: int = MAX_FLAT_KEYS,
    workers: Optional[int] = None,
    exec_backend: Optional[str] = None,
    kernel: Optional[str] = None,
) -> np.ndarray:
    """Per-node activation counts over ``num_cascades`` batched IC cascades.

    Every cascade starts from the same (already validated, deduplicated)
    ``seeds`` and runs through the shared frontier engine; the result's
    entry ``v`` counts the cascades in which ``v`` became active. That is
    the sufficient statistic for both the per-group Monte-Carlo spread
    (``bincount`` over group labels) and the scalar spread (one sum) —
    the full ``(cascade, node)`` activation matrix never materializes.
    With ``workers`` set, cascade ranges run as pool units; int64 count
    vectors sum exactly, so the total is bitwise worker-count-invariant.
    """
    n = adjacency[0].size - 1
    counts = np.zeros(n, dtype=np.int64)
    if seeds.size == 0 or num_cascades == 0:
        return counts
    if workers is not None:
        units = _instance_units(num_cascades, n, max_keys)
        seqs = spawn_seed_sequences(rng, len(units))
        tasks = [
            (seeds, hi - lo, seq) for (lo, hi), seq in zip(units, seqs)
        ]
        parts = parallel_map(
            _cascade_count_unit,
            tasks,
            workers=workers,
            shared=adjacency,
            payload=kernel,
            backend=exec_backend,
        )
        for part in parts:
            counts += part
        return counts
    chunk = max(int(max_keys) // max(n, 1), 1)
    for lo in range(0, num_cascades, chunk):
        m = min(chunk, num_cascades - lo)
        _, nodes = batched_reachability(
            adjacency,
            np.repeat(np.arange(m, dtype=np.int64), seeds.size),
            np.tile(seeds, m),
            m,
            rng,
            max_keys=max_keys,
            kernel=kernel,
        )
        counts += np.bincount(nodes, minlength=n)
    return counts
