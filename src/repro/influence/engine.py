"""Batched level-synchronous frontier engine for influence sampling.

Both halves of the influence subsystem are randomized reachability
problems over a CSR graph: an RR set is the set of nodes that reach a
root through live edges of the *transpose* graph, and an IC cascade is
the set of nodes reached from a seed set through live edges of the
forward graph. The scalar implementations (`sample_rr_set`,
`simulate_cascade`) pay one Python-level BFS per sample; at the paper's
budgets (10,000 evaluation cascades, 10^5-ish RR sets) that loop is the
dominant cost of every influence figure.

This module runs *many* samples through one BFS. All in-flight samples
share a combined frontier of ``(instance, node)`` pairs encoded as flat
``instance * n + node`` keys; each level expands the whole frontier
through the CSR arrays with one ``np.repeat``/fancy-indexing gather,
flips every frontier edge's coin in a single ``rng.random`` draw, and
dedups arrivals against a flat visited buffer — no per-node Python work.
Memory is bounded by chunking the instances so the visited buffer stays
under ``max_keys`` bools regardless of ``n`` or the sample count.

Multi-core execution: every entry point takes ``workers``. ``None`` (the
default) keeps the legacy in-line stream — one caller-supplied generator
drawn across chunks sequentially, bit-for-bit the pre-parallel
behaviour. Any integer ``workers >= 1`` switches to the *unit
decomposition*: instances are split into fixed work units (sized by the
visited-buffer cap and :data:`repro.utils.parallel.DEFAULT_UNITS`, never
by the worker count), each unit draws from its own
``SeedSequence.spawn`` child stream, and units are dispatched over a
shared-memory process pool (:func:`repro.utils.parallel.parallel_map`;
the CSR triple travels through ``multiprocessing.shared_memory``, not
pickle). Because the decomposition and the streams depend only on the
inputs, results are bitwise-identical for every worker count — including
``workers=1``, which runs the same units serially in-process.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.csr import (
    concat_packed,
    gather_csr_slices,
    merge_sorted_disjoint,
)
from repro.utils.parallel import (
    WorkerContext,
    parallel_map,
    spawn_seed_sequences,
    split_ranges,
    unit_size_for,
)

Adjacency = tuple[np.ndarray, np.ndarray, np.ndarray]

#: Visited-buffer budget (flat ``instance * n + node`` bool keys) per
#: chunk — 32M keys = 32 MB, small enough to live in cache-friendly
#: territory while keeping chunks large enough to amortize level setup.
MAX_FLAT_KEYS = 1 << 25

#: How many sorted per-level key arrays the sparse reachability chunk
#: accumulates before merging them into its base visited array. Bounds
#: the per-arrival membership probes (one ``searchsorted`` per pending
#: level) while amortizing the O(reached) merge over many levels.
_SPARSE_MERGE_EVERY = 16


def _reachability_chunk(
    adjacency: Adjacency,
    start_keys: np.ndarray,
    num_instances: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """All ``instance * n + node`` keys reachable from ``start_keys``.

    One level-synchronous BFS over every instance at once. Every frontier
    edge draws its coin from a single ``rng.random`` call per level (the
    scalar BFS draws per frontier *node*; per level is the batched
    equivalent — the marginal law of each edge coin is identical).
    """
    indptr, indices, probs = adjacency
    n = indptr.size - 1
    visited = np.zeros(num_instances * n, dtype=bool)
    start_keys = np.unique(start_keys)
    visited[start_keys] = True
    reached = [start_keys]
    frontier = start_keys
    while frontier.size:
        positions, owners = gather_csr_slices(indptr, frontier % n)
        if positions.size == 0:
            break
        live = rng.random(positions.size) < probs[positions]
        keys = (frontier // n)[owners[live]] * n + indices[positions[live]]
        keys = keys[~visited[keys]]
        if keys.size == 0:
            break
        # np.unique both dedups same-level arrivals and sorts the new
        # frontier by (instance, node), keeping expansion order canonical.
        keys = np.unique(keys)
        visited[keys] = True
        reached.append(keys)
        frontier = keys
    return np.concatenate(reached) if len(reached) > 1 else reached[0]


def _member_sorted(table: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Boolean membership of ``keys`` in the sorted array ``table``."""
    if table.size == 0:
        return np.zeros(keys.size, dtype=bool)
    idx = np.searchsorted(table, keys)
    valid = idx < table.size
    out = np.zeros(keys.size, dtype=bool)
    out[valid] = table[idx[valid]] == keys[valid]
    return out


def _reachability_chunk_sparse(
    adjacency: Adjacency,
    start_keys: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """:func:`_reachability_chunk` without the dense visited buffer.

    The dense chunk allocates ``num_instances * n`` bools, which caps the
    instances per chunk at ``max_keys // n`` — at a million nodes that is
    a few dozen instances and the per-level Python overhead dominates.
    This variant tracks visited keys as sorted arrays (a merged base plus
    up to :data:`_SPARSE_MERGE_EVERY` pending level arrays, probed with
    ``searchsorted``), so memory is O(reached keys) and the instance
    count per chunk is free. The frontier sequence — and therefore every
    ``rng`` draw — is bit-for-bit identical to the dense chunk on the
    same inputs: both filter arrivals against exactly the keys reached on
    earlier levels before the ``np.unique`` dedup.
    """
    indptr, indices, probs = adjacency
    n = indptr.size - 1
    start_keys = np.unique(start_keys)
    reached = [start_keys]
    base = start_keys
    pending: list[np.ndarray] = []
    frontier = start_keys
    while frontier.size:
        positions, owners = gather_csr_slices(indptr, frontier % n)
        if positions.size == 0:
            break
        live = rng.random(positions.size) < probs[positions]
        keys = (frontier // n)[owners[live]] * n + indices[positions[live]]
        if keys.size == 0:
            break
        seen = _member_sorted(base, keys)
        for level in pending:
            seen |= _member_sorted(level, keys)
        keys = keys[~seen]
        if keys.size == 0:
            break
        keys = np.unique(keys)
        reached.append(keys)
        pending.append(keys)
        frontier = keys
        if len(pending) >= _SPARSE_MERGE_EVERY:
            merged = pending[0]
            for level in pending[1:]:
                merged = merge_sorted_disjoint(merged, level)
            base = merge_sorted_disjoint(base, merged)
            pending = []
    return np.concatenate(reached) if len(reached) > 1 else reached[0]


def _pack_chunk_keys(
    keys: np.ndarray, num_instances: int, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Pack one chunk's reached keys into a ``(set_indptr, set_indices)``."""
    sample_ids, nodes = keys // n, keys % n
    order = np.argsort(sample_ids, kind="stable")
    counts = np.bincount(sample_ids, minlength=num_instances)
    set_indptr = np.zeros(num_instances + 1, dtype=np.int64)
    np.cumsum(counts, out=set_indptr[1:])
    return set_indptr, nodes[order]


def _instance_units(
    num_instances: int, n: int, max_keys: int
) -> list[tuple[int, int]]:
    """Fixed work-unit ranges for the parallel decomposition.

    Unit size honours the visited-buffer cap (``max_keys // n``) and the
    global unit target; it depends only on the inputs, so every worker
    count sees the same units (the determinism contract).
    """
    cap = max(int(max_keys) // max(n, 1), 1)
    return split_ranges(num_instances, unit_size_for(num_instances, cap=cap))


def _reachability_unit(ctx: WorkerContext, task: tuple) -> np.ndarray:
    """Worker: one reachability unit on the shared CSR triple."""
    start_keys, num_instances, seed = task
    return _reachability_chunk(
        ctx.arrays, start_keys, num_instances, np.random.default_rng(seed)
    )


def _rr_pack_unit(
    ctx: WorkerContext, task: tuple
) -> tuple[np.ndarray, np.ndarray]:
    """Worker: sample one unit's RR sets and CSR-pack them locally."""
    roots, seed = task
    indptr = ctx.arrays[0]
    n = indptr.size - 1
    keys = _reachability_chunk(
        ctx.arrays,
        np.arange(roots.size, dtype=np.int64) * n + roots,
        roots.size,
        np.random.default_rng(seed),
    )
    return _pack_chunk_keys(keys, roots.size, n)


def _cascade_count_unit(ctx: WorkerContext, task: tuple) -> np.ndarray:
    """Worker: per-node activation counts of one unit of cascades."""
    seeds, num_cascades, seed = task
    indptr = ctx.arrays[0]
    n = indptr.size - 1
    keys = _reachability_chunk(
        ctx.arrays,
        np.repeat(np.arange(num_cascades, dtype=np.int64), seeds.size) * n
        + np.tile(seeds, num_cascades),
        num_cascades,
        np.random.default_rng(seed),
    )
    return np.bincount(keys % n, minlength=n)


def batched_reachability(
    adjacency: Adjacency,
    start_ids: np.ndarray,
    start_nodes: np.ndarray,
    num_instances: int,
    rng: np.random.Generator,
    *,
    max_keys: int = MAX_FLAT_KEYS,
    workers: Optional[int] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Randomized multi-instance reachability; returns ``(ids, nodes)``.

    ``start_ids``/``start_nodes`` list the BFS sources as parallel arrays
    (an instance may have several sources — a cascade's seed set). The
    result enumerates every reached ``(instance, node)`` pair, sources
    included, each pair exactly once. Instances are processed in chunks
    of ``max_keys // n`` so the visited buffer never exceeds ``max_keys``
    bools. With ``workers`` set, the chunks become per-unit tasks with
    spawned RNG streams, dispatched over the shared-memory pool (see the
    module docstring for the determinism contract).
    """
    indptr = adjacency[0]
    n = indptr.size - 1
    if start_ids.size != start_nodes.size:
        raise ValueError("start_ids and start_nodes must have equal length")
    if num_instances == 0 or start_ids.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    if workers is not None:
        units = _instance_units(num_instances, n, max_keys)
        seeds = spawn_seed_sequences(rng, len(units))
        tasks = []
        for (lo, hi), seq in zip(units, seeds):
            in_unit = (start_ids >= lo) & (start_ids < hi)
            tasks.append(
                (
                    (start_ids[in_unit] - lo) * n + start_nodes[in_unit],
                    hi - lo,
                    seq,
                )
            )
        parts = parallel_map(
            _reachability_unit, tasks, workers=workers, shared=adjacency
        )
        ids_parts = [keys // n + lo for (lo, _), keys in zip(units, parts)]
        node_parts = [keys % n for keys in parts]
        return np.concatenate(ids_parts), np.concatenate(node_parts)
    chunk = max(int(max_keys) // max(n, 1), 1)
    if num_instances <= chunk:
        keys = _reachability_chunk(
            adjacency, start_ids * n + start_nodes, num_instances, rng
        )
        return keys // n, keys % n
    ids_parts: list[np.ndarray] = []
    node_parts: list[np.ndarray] = []
    for lo in range(0, num_instances, chunk):
        hi = min(lo + chunk, num_instances)
        in_chunk = (start_ids >= lo) & (start_ids < hi)
        keys = _reachability_chunk(
            adjacency,
            (start_ids[in_chunk] - lo) * n + start_nodes[in_chunk],
            hi - lo,
            rng,
        )
        ids_parts.append(keys // n + lo)
        node_parts.append(keys % n)
    return np.concatenate(ids_parts), np.concatenate(node_parts)


def sample_rr_sets_batch(
    transpose_adjacency: Adjacency,
    roots: np.ndarray,
    rng: np.random.Generator,
    *,
    max_keys: int = MAX_FLAT_KEYS,
    workers: Optional[int] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample one RR set per root, all through one batched reverse BFS.

    ``transpose_adjacency`` is the CSR triple of the transpose graph (so
    out-arcs walk original arcs backwards). Returns the packed pair
    ``(set_indptr, set_indices)``: sample ``j``'s nodes occupy
    ``set_indices[set_indptr[j]:set_indptr[j + 1]]``, root first. With
    ``workers`` set, root ranges become pool tasks — each unit samples
    *and packs* its sets, the parent concatenates the packed pairs in
    unit order, so the result is bitwise-identical for every worker
    count.
    """
    roots = np.asarray(roots, dtype=np.int64)
    n = transpose_adjacency[0].size - 1
    if roots.size and (roots.min() < 0 or roots.max() >= n):
        bad = roots[(roots < 0) | (roots >= n)][0]
        raise IndexError(f"root {bad} out of range [0, {n})")
    if workers is not None and roots.size:
        units = _instance_units(roots.size, n, max_keys)
        seeds = spawn_seed_sequences(rng, len(units))
        tasks = [
            (roots[lo:hi], seq) for (lo, hi), seq in zip(units, seeds)
        ]
        parts = parallel_map(
            _rr_pack_unit, tasks, workers=workers, shared=transpose_adjacency
        )
        return concat_packed(parts)
    sample_ids, nodes = batched_reachability(
        transpose_adjacency,
        np.arange(roots.size, dtype=np.int64),
        roots,
        roots.size,
        rng,
        max_keys=max_keys,
    )
    order = np.argsort(sample_ids, kind="stable")
    counts = np.bincount(sample_ids, minlength=roots.size)
    set_indptr = np.zeros(roots.size + 1, dtype=np.int64)
    np.cumsum(counts, out=set_indptr[1:])
    return set_indptr, nodes[order]


def sample_rr_sets_stream(
    transpose_adjacency: Adjacency,
    roots: np.ndarray,
    rng: np.random.Generator,
    *,
    max_keys: int = MAX_FLAT_KEYS,
    chunk_instances: Optional[int] = None,
):
    """Yield packed ``(set_indptr, set_indices)`` pairs chunk by chunk.

    The streaming twin of the serial :func:`sample_rr_sets_batch`: the
    out-of-core path flushes each yielded chunk into a byte-budgeted
    segment instead of concatenating everything into one flat pair, so
    peak memory is one chunk, not the whole collection.

    With ``chunk_instances=None`` the chunk law is the flat serial law
    (``max_keys // n`` instances per chunk, dense visited buffer) and
    ``concat_packed`` over the yielded pairs is bitwise-identical to
    ``sample_rr_sets_batch(..., workers=None)`` — per-chunk stable
    argsorts concatenate to the global stable argsort because instance
    ids are grouped by chunk. An explicit ``chunk_instances`` switches to
    the sparse visited structure (:func:`_reachability_chunk_sparse`),
    whose memory is O(reached keys) instead of O(instances · n): the
    draws still match the flat law whenever both paths process the roots
    in a single chunk (``roots.size <= min(chunk_instances,
    max_keys // n)``), which covers the bitwise-pinned small datasets;
    large graphs get a deterministic law of their own.
    """
    roots = np.asarray(roots, dtype=np.int64)
    n = transpose_adjacency[0].size - 1
    if roots.size and (roots.min() < 0 or roots.max() >= n):
        bad = roots[(roots < 0) | (roots >= n)][0]
        raise IndexError(f"root {bad} out of range [0, {n})")
    if roots.size == 0:
        return
    if chunk_instances is None:
        chunk = max(int(max_keys) // max(n, 1), 1)
        sparse = False
    else:
        chunk = max(int(chunk_instances), 1)
        sparse = True
    for lo in range(0, roots.size, chunk):
        hi = min(lo + chunk, roots.size)
        start_keys = (
            np.arange(hi - lo, dtype=np.int64) * n + roots[lo:hi]
        )
        if sparse:
            keys = _reachability_chunk_sparse(
                transpose_adjacency, start_keys, rng
            )
        else:
            keys = _reachability_chunk(
                transpose_adjacency, start_keys, hi - lo, rng
            )
        yield _pack_chunk_keys(keys, hi - lo, n)


def cascade_activation_counts(
    adjacency: Adjacency,
    seeds: np.ndarray,
    num_cascades: int,
    rng: np.random.Generator,
    *,
    max_keys: int = MAX_FLAT_KEYS,
    workers: Optional[int] = None,
) -> np.ndarray:
    """Per-node activation counts over ``num_cascades`` batched IC cascades.

    Every cascade starts from the same (already validated, deduplicated)
    ``seeds`` and runs through the shared frontier engine; the result's
    entry ``v`` counts the cascades in which ``v`` became active. That is
    the sufficient statistic for both the per-group Monte-Carlo spread
    (``bincount`` over group labels) and the scalar spread (one sum) —
    the full ``(cascade, node)`` activation matrix never materializes.
    With ``workers`` set, cascade ranges run as pool units; int64 count
    vectors sum exactly, so the total is bitwise worker-count-invariant.
    """
    n = adjacency[0].size - 1
    counts = np.zeros(n, dtype=np.int64)
    if seeds.size == 0 or num_cascades == 0:
        return counts
    if workers is not None:
        units = _instance_units(num_cascades, n, max_keys)
        seqs = spawn_seed_sequences(rng, len(units))
        tasks = [
            (seeds, hi - lo, seq) for (lo, hi), seq in zip(units, seqs)
        ]
        parts = parallel_map(
            _cascade_count_unit, tasks, workers=workers, shared=adjacency
        )
        for part in parts:
            counts += part
        return counts
    chunk = max(int(max_keys) // max(n, 1), 1)
    for lo in range(0, num_cascades, chunk):
        m = min(chunk, num_cascades - lo)
        _, nodes = batched_reachability(
            adjacency,
            np.repeat(np.arange(m, dtype=np.int64), seeds.size),
            np.tile(seeds, m),
            m,
            rng,
            max_keys=max_keys,
        )
        counts += np.bincount(nodes, minlength=n)
    return counts
