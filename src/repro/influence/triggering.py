"""The general triggering model [Kempe et al. 2003, §4.1].

Footnote 3 of the paper notes the algorithms extend to "any diffusion
model, e.g., linear threshold and triggering models" whose spread stays
monotone submodular. The triggering model is the common generalisation:
every node ``v`` independently samples a *trigger set* ``T_v`` from a
distribution over subsets of its in-neighbours, and ``v`` activates as
soon as some node of ``T_v`` is active. Reachability from the seeds
through the sampled "live" arcs ``(u, v), u in T_v`` equals the cascade
outcome, which is what makes the spread monotone submodular and RIS
sampling valid.

Special cases provided as trigger samplers:

* :func:`ic_trigger_sampler` — each in-neighbour joins ``T_v``
  independently with its arc probability (= independent cascade);
* :func:`lt_trigger_sampler` — at most one in-neighbour, chosen with
  the LT weights (= linear threshold);
* :func:`topk_trigger_sampler` — a correlated example: the ``r``
  strongest in-arcs all fire together with probability equal to their
  mean strength (models "peer-group" adoption; not expressible as IC).

:class:`TriggeringModel` mirrors :class:`repro.influence.lt_model.
LTModel`: forward simulation, Monte-Carlo group spread, and RR-set
sampling producing a standard :class:`repro.influence.ris.RRCollection`
so :class:`repro.problems.influence.InfluenceObjective` works unchanged.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.influence.ris import RRCollection
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int

#: ``(in_neighbors, in_probs, rng) -> selected in-neighbours`` for one node.
TriggerSampler = Callable[
    [np.ndarray, np.ndarray, np.random.Generator], np.ndarray
]


def ic_trigger_sampler() -> TriggerSampler:
    """Independent-cascade trigger distribution (independent inclusion)."""

    def sample(
        neighbors: np.ndarray, probs: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if neighbors.size == 0:
            return neighbors
        return neighbors[rng.random(neighbors.size) < probs]

    return sample


def lt_trigger_sampler(*, normalize: bool = True) -> TriggerSampler:
    """Linear-threshold trigger distribution (at most one in-neighbour).

    With ``normalize`` the arc strengths are rescaled per node so they
    sum to at most 1 (else strengths above 1 in total are an error).
    """

    def sample(
        neighbors: np.ndarray, probs: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if neighbors.size == 0:
            return neighbors
        weights = probs.astype(float)
        total = float(weights.sum())
        if total > 1.0:
            if not normalize:
                raise ValueError(
                    f"LT in-weights sum to {total} > 1; pass normalize=True"
                )
            weights = weights / total
        r = rng.random()
        acc = 0.0
        for offset in range(neighbors.size):
            acc += weights[offset]
            if r < acc:
                return neighbors[offset : offset + 1]
        return neighbors[:0]

    return sample


def topk_trigger_sampler(r: int = 2) -> TriggerSampler:
    """A correlated trigger distribution: all-or-nothing strongest arcs.

    The ``r`` in-arcs with the largest strengths fire *together* with
    probability equal to their mean strength, otherwise ``T_v`` is
    empty. Positively correlated arc liveness like this cannot be
    produced by IC, demonstrating that the substrate genuinely covers
    the triggering generality (and giving tests a third model).
    """
    check_positive_int(r, "r")

    def sample(
        neighbors: np.ndarray, probs: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if neighbors.size == 0:
            return neighbors
        top = np.argsort(probs)[::-1][:r]
        if rng.random() < float(probs[top].mean()):
            return neighbors[np.sort(top)]
        return neighbors[:0]

    return sample


class TriggeringModel:
    """Diffusion under an arbitrary per-node trigger-set distribution.

    Parameters
    ----------
    graph:
        The grouped social graph; arc probabilities parameterise the
        sampler.
    sampler:
        The trigger-set distribution (defaults to independent cascade,
        making the model a strict superset of
        :mod:`repro.influence.ic_model`).
    """

    def __init__(
        self, graph: Graph, sampler: Optional[TriggerSampler] = None
    ) -> None:
        self.graph = graph
        self.sampler = sampler or ic_trigger_sampler()
        indptr, indices, probs = graph.transpose().out_adjacency()
        self._in_indptr = indptr
        self._in_indices = indices
        self._in_probs = probs

    def _sample_trigger_set(
        self, node: int, rng: np.random.Generator
    ) -> np.ndarray:
        lo, hi = self._in_indptr[node], self._in_indptr[node + 1]
        return self.sampler(
            self._in_indices[lo:hi], self._in_probs[lo:hi], rng
        )

    # -- forward simulation -------------------------------------------------
    def simulate(
        self, seeds: Sequence[int], rng: np.random.Generator
    ) -> np.ndarray:
        """One cascade; returns the boolean activation vector.

        Trigger sets are sampled lazily the first time a node is
        examined, which is distributionally identical to sampling all of
        them upfront (they are mutually independent) but touches only
        the explored part of the graph.
        """
        n = self.graph.num_nodes
        active = np.zeros(n, dtype=bool)
        for s in seeds:
            s = int(s)
            if not 0 <= s < n:
                raise IndexError(f"seed {s} out of range [0, {n})")
            active[s] = True
        # Fixed-point iteration over sampled trigger sets: node v joins
        # when T_v intersects the active set. Each node's T_v is sampled
        # once and cached for the cascade.
        triggers: dict[int, np.ndarray] = {}
        changed = True
        while changed:
            changed = False
            for v in range(n):
                if active[v]:
                    continue
                t_v = triggers.get(v)
                if t_v is None:
                    t_v = self._sample_trigger_set(v, rng)
                    triggers[v] = t_v
                if t_v.size and bool(active[t_v].any()):
                    active[v] = True
                    changed = True
        return active

    def monte_carlo_group_spread(
        self,
        seeds: Sequence[int],
        num_simulations: int = 1000,
        *,
        seed: SeedLike = None,
    ) -> np.ndarray:
        """Per-group average activation probabilities."""
        check_positive_int(num_simulations, "num_simulations")
        rng = as_generator(seed)
        labels = self.graph.groups
        c = self.graph.num_groups
        sizes = self.graph.group_sizes().astype(float)
        totals = np.zeros(c, dtype=float)
        for _ in range(num_simulations):
            active = self.simulate(seeds, rng)
            totals += np.bincount(labels[active], minlength=c)
        return totals / (sizes * num_simulations)

    # -- reverse sampling ---------------------------------------------------
    def sample_rr_set(
        self, root: int, rng: np.random.Generator
    ) -> np.ndarray:
        """One RR set: reverse BFS through lazily sampled trigger sets.

        A node ``u`` belongs to the RR set of ``root`` iff seeding ``u``
        would activate ``root`` in the live-arc outcome, i.e. iff
        ``root`` is reachable from ``u`` along arcs ``(x in T_y, y)``.
        Walking backwards, the out-edges of ``y`` in the reverse view
        are exactly ``T_y`` — sampled once per visited node.
        """
        n = self.graph.num_nodes
        if not 0 <= root < n:
            raise IndexError(f"root {root} out of range [0, {n})")
        visited = np.zeros(n, dtype=bool)
        visited[root] = True
        out = [int(root)]
        frontier = [int(root)]
        while frontier:
            next_frontier: list[int] = []
            for y in frontier:
                for x in self._sample_trigger_set(y, rng):
                    x = int(x)
                    if not visited[x]:
                        visited[x] = True
                        out.append(x)
                        next_frontier.append(x)
            frontier = next_frontier
        return np.asarray(out, dtype=np.int64)

    def sample_rr_collection(
        self,
        num_samples: int,
        *,
        seed: SeedLike = None,
        stratified: bool = True,
    ) -> RRCollection:
        """An :class:`RRCollection` drop-in compatible with the IC/LT ones."""
        check_positive_int(num_samples, "num_samples")
        rng = as_generator(seed)
        labels = self.graph.groups
        c = self.graph.num_groups
        sets: list[np.ndarray] = []
        root_groups: list[int] = []
        if stratified:
            members = [np.flatnonzero(labels == i) for i in range(c)]
            base, rem = divmod(num_samples, c)
            for i in range(c):
                quota = max(base + (1 if i < rem else 0), 1)
                roots = members[i][
                    rng.integers(0, members[i].size, size=quota)
                ]
                for r in roots:
                    sets.append(self.sample_rr_set(int(r), rng))
                    root_groups.append(i)
        else:
            roots = rng.integers(0, self.graph.num_nodes, size=num_samples)
            for r in roots:
                sets.append(self.sample_rr_set(int(r), rng))
                root_groups.append(int(labels[int(r)]))
        return RRCollection(
            sets=sets,
            root_groups=np.asarray(root_groups, dtype=np.int64),
            num_nodes=self.graph.num_nodes,
            num_groups=c,
        )
