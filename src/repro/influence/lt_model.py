"""Linear-threshold (LT) diffusion model [Kempe et al. 2003].

The paper's footnote 3 notes that its algorithms "can be trivially
extended to any diffusion model, e.g., linear threshold and triggering
models" whose spread is monotone submodular. This module provides that
extension: the LT model with its live-edge (triggering) equivalent, a
Monte-Carlo evaluator, and LT reverse-reachable sampling — so
:class:`repro.problems.influence.InfluenceObjective` works unchanged on
LT estimates via :meth:`LTModel.sample_rr_collection`.

Model: node ``v`` has a random threshold ``theta_v ~ U[0, 1]`` and each
in-neighbour ``u`` an influence weight ``b_uv`` with
``sum_u b_uv <= 1``; ``v`` activates when the weights of its active
in-neighbours reach ``theta_v``. Equivalently (Kempe et al., Thm 4.6),
every node picks *at most one* in-neighbour as its "trigger" with
probability ``b_uv`` (no one with ``1 - sum_u b_uv``); activation equals
reachability from the seeds through trigger edges. Both directions of
that equivalence are exercised in the tests.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.influence.ris import RRCollection
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int


class LTModel:
    """Linear-threshold diffusion on a grouped graph.

    Parameters
    ----------
    graph:
        The social graph (arcs carry the raw influence strengths).
    weighting:
        ``"degree"`` (default) sets ``b_uv = 1 / indegree(v)`` — the
        standard parameter-free LT instantiation; ``"probability"``
        reuses the stored arc probabilities, rescaled per target node so
        that in-weights sum to at most 1.
    """

    def __init__(self, graph: Graph, *, weighting: str = "degree") -> None:
        if weighting not in ("degree", "probability"):
            raise ValueError(
                f"weighting must be 'degree' or 'probability', got {weighting!r}"
            )
        self.graph = graph
        self.weighting = weighting
        # In-adjacency with trigger probabilities: CSR over the transpose,
        # so row v lists (u, b_uv).
        indptr, indices, probs = graph.transpose().out_adjacency()
        weights = probs.astype(float).copy()
        for v in range(graph.num_nodes):
            lo, hi = indptr[v], indptr[v + 1]
            if lo == hi:
                continue
            if weighting == "degree":
                weights[lo:hi] = 1.0 / (hi - lo)
            else:
                total = float(weights[lo:hi].sum())
                if total > 1.0:
                    weights[lo:hi] /= total
        self._in_indptr = indptr
        self._in_indices = indices
        self._in_weights = weights

    # ------------------------------------------------------------------
    def sample_triggers(self, rng: np.random.Generator) -> np.ndarray:
        """One live-edge outcome: each node's trigger in-neighbour (or -1).

        Node ``v`` selects in-neighbour ``u`` with probability ``b_uv``,
        independently across nodes.
        """
        n = self.graph.num_nodes
        triggers = np.full(n, -1, dtype=np.int64)
        for v in range(n):
            lo, hi = self._in_indptr[v], self._in_indptr[v + 1]
            if lo == hi:
                continue
            w = self._in_weights[lo:hi]
            r = rng.random()
            acc = 0.0
            for offset in range(hi - lo):
                acc += w[offset]
                if r < acc:
                    triggers[v] = self._in_indices[lo + offset]
                    break
        return triggers

    def simulate(
        self, seeds: Sequence[int], rng: np.random.Generator
    ) -> np.ndarray:
        """One LT cascade via the triggering equivalence; returns the
        boolean activation vector."""
        triggers = self.sample_triggers(rng)
        n = self.graph.num_nodes
        active = np.zeros(n, dtype=bool)
        frontier = []
        for s in seeds:
            s = int(s)
            if not 0 <= s < n:
                raise IndexError(f"seed {s} out of range [0, {n})")
            if not active[s]:
                active[s] = True
                frontier.append(s)
        # Forward propagation through trigger edges: v activates iff its
        # trigger is active. Build the forward view once per cascade.
        children: dict[int, list[int]] = {}
        for v, t in enumerate(triggers):
            if t >= 0:
                children.setdefault(int(t), []).append(v)
        while frontier:
            u = frontier.pop()
            for v in children.get(u, ()):
                if not active[v]:
                    active[v] = True
                    frontier.append(v)
        return active

    def simulate_thresholds(
        self, seeds: Sequence[int], rng: np.random.Generator
    ) -> np.ndarray:
        """One LT cascade via explicit thresholds (the model's original
        definition) — used in tests to validate the triggering
        equivalence distributionally."""
        n = self.graph.num_nodes
        thresholds = rng.random(n)
        active = np.zeros(n, dtype=bool)
        for s in seeds:
            active[int(s)] = True
        changed = True
        while changed:
            changed = False
            for v in range(n):
                if active[v]:
                    continue
                lo, hi = self._in_indptr[v], self._in_indptr[v + 1]
                if lo == hi:
                    continue
                mass = float(
                    self._in_weights[lo:hi][active[self._in_indices[lo:hi]]].sum()
                )
                if mass >= thresholds[v]:
                    active[v] = True
                    changed = True
        return active

    # ------------------------------------------------------------------
    def monte_carlo_group_spread(
        self,
        seeds: Sequence[int],
        num_simulations: int = 1000,
        *,
        seed: SeedLike = None,
    ) -> np.ndarray:
        """Per-group average activation probabilities under LT."""
        check_positive_int(num_simulations, "num_simulations")
        rng = as_generator(seed)
        labels = self.graph.groups
        c = self.graph.num_groups
        sizes = self.graph.group_sizes().astype(float)
        totals = np.zeros(c, dtype=float)
        for _ in range(num_simulations):
            active = self.simulate(seeds, rng)
            totals += np.bincount(labels[active], minlength=c)
        return totals / (sizes * num_simulations)

    def sample_rr_set(
        self, root: int, rng: np.random.Generator
    ) -> np.ndarray:
        """One LT reverse-reachable set: a random backward trigger walk.

        From the root, repeatedly sample the current node's trigger
        in-neighbour and step to it; stop on "no trigger" or on a cycle.
        The walk visits exactly the nodes whose selection as seeds would
        activate the root in the corresponding live-edge outcome.
        """
        n = self.graph.num_nodes
        if not 0 <= root < n:
            raise IndexError(f"root {root} out of range [0, {n})")
        visited = {int(root)}
        out = [int(root)]
        current = int(root)
        while True:
            lo, hi = self._in_indptr[current], self._in_indptr[current + 1]
            if lo == hi:
                break
            w = self._in_weights[lo:hi]
            r = rng.random()
            acc = 0.0
            nxt = -1
            for offset in range(hi - lo):
                acc += w[offset]
                if r < acc:
                    nxt = int(self._in_indices[lo + offset])
                    break
            if nxt < 0 or nxt in visited:
                break
            visited.add(nxt)
            out.append(nxt)
            current = nxt
        return np.asarray(out, dtype=np.int64)

    def sample_rr_collection(
        self,
        num_samples: int,
        *,
        seed: SeedLike = None,
        stratified: bool = True,
    ) -> RRCollection:
        """An :class:`RRCollection` of LT RR sets (drop-in for the IC one)."""
        check_positive_int(num_samples, "num_samples")
        rng = as_generator(seed)
        labels = self.graph.groups
        c = self.graph.num_groups
        sets: list[np.ndarray] = []
        root_groups: list[int] = []
        if stratified:
            members = [np.flatnonzero(labels == i) for i in range(c)]
            base, rem = divmod(num_samples, c)
            for i in range(c):
                quota = max(base + (1 if i < rem else 0), 1)
                roots = members[i][rng.integers(0, members[i].size, size=quota)]
                for r in roots:
                    sets.append(self.sample_rr_set(int(r), rng))
                    root_groups.append(i)
        else:
            roots = rng.integers(0, self.graph.num_nodes, size=num_samples)
            for r in roots:
                sets.append(self.sample_rr_set(int(r), rng))
                root_groups.append(int(labels[r]))
            present = np.bincount(np.asarray(root_groups), minlength=c)
            for i in np.flatnonzero(present == 0):
                members = np.flatnonzero(labels == i)
                r = int(members[rng.integers(0, members.size)])
                sets.append(self.sample_rr_set(r, rng))
                root_groups.append(int(i))
        return RRCollection(
            sets=sets,
            root_groups=np.asarray(root_groups, dtype=np.int64),
            num_nodes=self.graph.num_nodes,
            num_groups=c,
        )
