"""IMM-style sample-size schedule for RIS [Tang et al. 2015].

IMM ("Influence Maximization via Martingales") answers *how many RR sets
are enough*: with

    alpha = sqrt(ell * ln n + ln 2)
    beta  = sqrt((1 - 1/e) * (ln C(n, k) + ell * ln n + ln 2))
    lambda* = 2 n ((1 - 1/e) alpha + beta)^2 / eps^2

``theta = lambda* / OPT`` samples suffice for a ``(1 - 1/e - eps)``
guarantee with probability ``1 - 1/n^ell``. Since ``OPT`` is unknown, IMM
runs a doubling phase: probe lower bounds ``x = n / 2^i``; at each probe
draw ``lambda' / x`` samples, greedy-solve the coverage instance, and stop
once the estimated spread certifies ``OPT >= x / (1 + eps')``.

This module implements that schedule *simplified in constants only* (we
use the published formulas but do not implement the final-phase sample
reuse trick), and adds one extension for BSM: the returned collection can
be *stratified* so each group's ``f_i`` estimator gets an equal share of
roots, which keeps the fairness estimate's variance bounded for small
groups. ``max_samples`` caps the budget so that laptop-scale benchmark
runs stay fast; the cap is reported in the result for transparency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.influence.ris import RRCollection, sample_rr_collection, sample_rr_set
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int


def _log_binomial(n: int, k: int) -> float:
    """``ln C(n, k)`` via lgamma (stable for large n)."""
    if k < 0 or k > n:
        return float("-inf")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def imm_sample_bound(
    n: int,
    k: int,
    *,
    epsilon: float = 0.5,
    ell: float = 1.0,
) -> float:
    """``lambda*`` of Tang et al. (2015), Eq. (6) — samples per unit OPT.

    ``theta = lambda* / OPT`` where OPT counts *expected activated nodes*
    (not the normalised fraction).
    """
    check_positive_int(n, "n")
    check_positive_int(k, "k")
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    if ell <= 0:
        raise ValueError(f"ell must be positive, got {ell}")
    e_frac = 1.0 - 1.0 / math.e
    alpha = math.sqrt(ell * math.log(n) + math.log(2.0))
    beta = math.sqrt(e_frac * (_log_binomial(n, k) + ell * math.log(n) + math.log(2.0)))
    return 2.0 * n * (e_frac * alpha + beta) ** 2 / epsilon**2


@dataclass
class IMMResult:
    """Outcome of the IMM sampling phase."""

    collection: RRCollection
    opt_lower_bound: float
    target_samples: int
    capped: bool


def imm_rr_collection(
    graph: Graph,
    k: int,
    *,
    epsilon: float = 0.5,
    ell: float = 1.0,
    stratified: bool = True,
    max_samples: Optional[int] = 200_000,
    seed: SeedLike = None,
) -> IMMResult:
    """Run the IMM doubling phase and return a sized RR collection.

    Parameters
    ----------
    epsilon, ell:
        IMM accuracy / confidence parameters. The defaults favour speed —
        the paper evaluates final solutions with independent Monte-Carlo
        simulation anyway, so the RR estimate only steers the greedy.
    stratified:
        Re-draw the final collection with per-group quotas (see
        :func:`repro.influence.ris.sample_rr_collection`).
    max_samples:
        Hard cap on the number of RR sets (``None`` disables). Reported
        via ``IMMResult.capped``.
    """
    check_positive_int(k, "k")
    rng = as_generator(seed)
    n = graph.num_nodes
    if k >= n:
        raise ValueError(f"k={k} must be smaller than the node count {n}")
    eps_prime = math.sqrt(2.0) * epsilon
    log_n = math.log(max(n, 2))
    lambda_prime = (
        (2.0 + 2.0 * eps_prime / 3.0)
        * (_log_binomial(n, k) + ell * log_n + math.log(max(math.log2(max(n, 2)), 1.0)))
        * n
        / eps_prime**2
    )
    # Doubling phase: probe OPT lower bounds x = n / 2^i.
    transpose = graph.transpose().out_adjacency()
    scratch = np.zeros(n, dtype=bool)
    labels = graph.groups
    sets: list[np.ndarray] = []
    root_groups: list[int] = []
    lb = 1.0
    max_iters = max(int(math.log2(n)), 1)
    for i in range(1, max_iters + 1):
        x = n / 2.0**i
        theta_i = int(math.ceil(lambda_prime / x))
        if max_samples is not None:
            theta_i = min(theta_i, max_samples)
        while len(sets) < theta_i:
            root = int(rng.integers(0, n))
            sets.append(sample_rr_set(transpose, root, rng, scratch))
            root_groups.append(int(labels[root]))
        frac = _greedy_coverage_fraction(sets, n, k)
        if n * frac >= (1.0 + eps_prime) * x:
            lb = n * frac / (1.0 + eps_prime)
            break
        if max_samples is not None and len(sets) >= max_samples:
            lb = max(n * frac, 1.0)
            break
    lambda_star = imm_sample_bound(n, k, epsilon=epsilon, ell=ell)
    theta = int(math.ceil(lambda_star / lb))
    capped = False
    if max_samples is not None and theta > max_samples:
        theta = max_samples
        capped = True
    theta = max(theta, graph.num_groups)  # at least one RR set per group
    collection = sample_rr_collection(
        graph, theta, seed=rng, stratified=stratified
    )
    return IMMResult(
        collection=collection,
        opt_lower_bound=lb,
        target_samples=theta,
        capped=capped,
    )


def _greedy_coverage_fraction(sets: list[np.ndarray], n: int, k: int) -> float:
    """Fraction of RR sets covered by the greedy size-k node set.

    Standard max-coverage greedy over the inverted index; used only inside
    the doubling phase to certify OPT lower bounds.
    """
    if not sets:
        return 0.0
    counts = np.zeros(n, dtype=np.int64)
    membership: dict[int, list[int]] = {}
    for j, rr in enumerate(sets):
        for v in rr:
            counts[v] += 1
            membership.setdefault(int(v), []).append(j)
    covered = np.zeros(len(sets), dtype=bool)
    total = 0
    for _ in range(k):
        best = int(np.argmax(counts))
        if counts[best] <= 0:
            break
        for j in membership.get(best, ()):
            if not covered[j]:
                covered[j] = True
                total += 1
                for v in sets[j]:
                    counts[v] -= 1
    return total / len(sets)
