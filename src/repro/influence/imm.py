"""IMM-style sample-size schedule for RIS [Tang et al. 2015].

IMM ("Influence Maximization via Martingales") answers *how many RR sets
are enough*: with

    alpha = sqrt(ell * ln n + ln 2)
    beta  = sqrt((1 - 1/e) * (ln C(n, k) + ell * ln n + ln 2))
    lambda* = 2 n ((1 - 1/e) alpha + beta)^2 / eps^2

``theta = lambda* / OPT`` samples suffice for a ``(1 - 1/e - eps)``
guarantee with probability ``1 - 1/n^ell``. Since ``OPT`` is unknown, IMM
runs a doubling phase: probe lower bounds ``x = n / 2^i``; at each probe
draw ``lambda' / x`` samples, greedy-solve the coverage instance, and stop
once the estimated spread certifies ``OPT >= x / (1 + eps')``.

This module implements that schedule *simplified in constants only* (we
use the published formulas) and adds one extension for BSM: the returned
collection can be *stratified* so each group's ``f_i`` estimator gets an
equal share of roots, which keeps the fairness estimate's variance
bounded for small groups. ``max_samples`` caps the budget so that
laptop-scale benchmark runs stay fast; the cap is reported in the result
for transparency.

Sampling runs through the batched frontier engine: each doubling probe
tops its pool up to ``theta_i`` with one :func:`sample_rr_sets_batch`
call (the probe sizes grow geometrically, so the top-ups do too), and in
the unstratified case the final collection *reuses* the doubling-phase
samples — uniform roots are exactly the final distribution — drawing
only the shortfall. ``IMMResult.reused_samples`` reports how many came
from the phase. Caveat, as in IMM's own final-phase reuse: the retained
samples are the ones on which the stopping rule fired, so they are not
independent of the certified lower bound and the formal
``(1 - 1/e - eps)`` guarantee holds only for a fresh draw
(``stratified=True``, the default, re-draws and keeps it). The
reproduction tolerates this for the throughput win because, as in the
paper's pipeline, final solutions are re-scored with independent
Monte-Carlo simulation anyway.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.graphs.graph import Graph
from repro.influence.engine import sample_rr_sets_batch
from repro.influence.ris import RRCollection, sample_rr_collection
from repro.utils.csr import build_csr, concat_packed, gather_csr_slices, invert_csr
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int


def _log_binomial(n: int, k: int) -> float:
    """``ln C(n, k)`` via lgamma (stable for large n)."""
    if k < 0 or k > n:
        return float("-inf")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def imm_sample_bound(
    n: int,
    k: int,
    *,
    epsilon: float = 0.5,
    ell: float = 1.0,
) -> float:
    """``lambda*`` of Tang et al. (2015), Eq. (6) — samples per unit OPT.

    ``theta = lambda* / OPT`` where OPT counts *expected activated nodes*
    (not the normalised fraction).
    """
    check_positive_int(n, "n")
    check_positive_int(k, "k")
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    if ell <= 0:
        raise ValueError(f"ell must be positive, got {ell}")
    e_frac = 1.0 - 1.0 / math.e
    alpha = math.sqrt(ell * math.log(n) + math.log(2.0))
    beta = math.sqrt(e_frac * (_log_binomial(n, k) + ell * math.log(n) + math.log(2.0)))
    return 2.0 * n * (e_frac * alpha + beta) ** 2 / epsilon**2


@dataclass
class IMMResult:
    """Outcome of the IMM sampling phase."""

    collection: RRCollection
    opt_lower_bound: float
    target_samples: int
    capped: bool
    reused_samples: int = 0


def imm_rr_collection(
    graph: Graph,
    k: int,
    *,
    epsilon: float = 0.5,
    ell: float = 1.0,
    stratified: bool = True,
    max_samples: Optional[int] = 200_000,
    seed: SeedLike = None,
    workers: Optional[int] = None,
    exec_backend: Optional[str] = None,
    kernel: Optional[str] = None,
) -> IMMResult:
    """Run the IMM doubling phase and return a sized RR collection.

    Parameters
    ----------
    epsilon, ell:
        IMM accuracy / confidence parameters. The defaults favour speed —
        the paper evaluates final solutions with independent Monte-Carlo
        simulation anyway, so the RR estimate only steers the greedy.
    stratified:
        Re-draw the final collection with per-group quotas (see
        :func:`repro.influence.ris.sample_rr_collection`). Unstratified
        collections instead reuse the doubling-phase samples and top up
        only the shortfall.
    max_samples:
        Hard cap on the number of RR sets (``None`` disables). Reported
        via ``IMMResult.capped``.
    workers:
        Worker-pool width for every sampling call (doubling phase and
        final collection); see :mod:`repro.utils.parallel`.
    exec_backend:
        Pool flavour for the ``workers`` path (thread/process/serial).
    kernel:
        Hot-loop implementation set (see :mod:`repro.kernels`).
    """
    check_positive_int(k, "k")
    rng = as_generator(seed)
    n = graph.num_nodes
    if k >= n:
        raise ValueError(f"k={k} must be smaller than the node count {n}")
    eps_prime = math.sqrt(2.0) * epsilon
    log_n = math.log(max(n, 2))
    lambda_prime = (
        (2.0 + 2.0 * eps_prime / 3.0)
        * (_log_binomial(n, k) + ell * log_n + math.log(max(math.log2(max(n, 2)), 1.0)))
        * n
        / eps_prime**2
    )
    # Doubling phase: probe OPT lower bounds x = n / 2^i; each probe tops
    # the shared pool up to theta_i through one batched sampling call.
    transpose = graph.transpose_adjacency()
    labels = graph.groups
    parts: list[tuple[np.ndarray, np.ndarray]] = []
    group_parts: list[np.ndarray] = []
    num_have = 0
    packed = (np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64))
    lb = 1.0
    max_iters = max(int(math.log2(n)), 1)
    for i in range(1, max_iters + 1):
        x = n / 2.0**i
        theta_i = int(math.ceil(lambda_prime / x))
        if max_samples is not None:
            theta_i = min(theta_i, max_samples)
        if theta_i > num_have:
            roots = rng.integers(0, n, size=theta_i - num_have)
            parts.append(
                sample_rr_sets_batch(
                    transpose,
                    roots,
                    rng,
                    workers=workers,
                    exec_backend=exec_backend,
                    kernel=kernel,
                )
            )
            group_parts.append(labels[roots])
            num_have = theta_i
            packed = concat_packed(parts)
            parts = [packed]
        frac = _greedy_coverage_fraction(packed, n, k)
        if n * frac >= (1.0 + eps_prime) * x:
            lb = n * frac / (1.0 + eps_prime)
            break
        if max_samples is not None and num_have >= max_samples:
            lb = max(n * frac, 1.0)
            break
    lambda_star = imm_sample_bound(n, k, epsilon=epsilon, ell=ell)
    theta = int(math.ceil(lambda_star / lb))
    capped = False
    if max_samples is not None and theta > max_samples:
        theta = max_samples
        capped = True
    theta = max(theta, graph.num_groups)  # at least one RR set per group
    if stratified:
        # Per-group quotas need a fresh root distribution; the phase pool
        # (uniform roots) cannot be reused.
        collection = sample_rr_collection(
            graph,
            theta,
            seed=rng,
            stratified=True,
            workers=workers,
            exec_backend=exec_backend,
            kernel=kernel,
        )
        reused = 0
    else:
        collection, reused = _final_unstratified(
            graph, packed, np.concatenate(group_parts), theta, transpose, rng,
            workers=workers,
            exec_backend=exec_backend,
            kernel=kernel,
        )
    return IMMResult(
        collection=collection,
        opt_lower_bound=lb,
        target_samples=theta,
        capped=capped,
        reused_samples=reused,
    )


def _final_unstratified(
    graph: Graph,
    packed: tuple[np.ndarray, np.ndarray],
    phase_groups: np.ndarray,
    theta: int,
    transpose: tuple[np.ndarray, np.ndarray, np.ndarray],
    rng: np.random.Generator,
    *,
    workers: Optional[int] = None,
    exec_backend: Optional[str] = None,
    kernel: Optional[str] = None,
) -> tuple[RRCollection, int]:
    """Assemble the final unstratified collection, reusing phase samples.

    The doubling phase drew roots uniformly — the same distribution the
    final unstratified collection needs — so the first ``theta`` phase
    samples are kept verbatim and only the shortfall is drawn. The kept
    samples are conditioned on the doubling phase's stopping event (see
    the module docstring for why that trade is accepted). Groups that no
    root hit get one extra RR set each (the collection requires every
    group to be present), mirroring ``sample_rr_collection``.
    """
    set_indptr, set_indices = packed
    reused = min(set_indptr.size - 1, theta)
    parts = [(set_indptr[: reused + 1].copy(), set_indices[: set_indptr[reused]])]
    group_parts = [phase_groups[:reused]]
    labels = graph.groups
    if theta > reused:
        roots = rng.integers(0, graph.num_nodes, size=theta - reused)
        parts.append(
            sample_rr_sets_batch(
                transpose,
                roots,
                rng,
                workers=workers,
                exec_backend=exec_backend,
                kernel=kernel,
            )
        )
        group_parts.append(labels[roots])
    root_groups = np.concatenate(group_parts)
    present = np.bincount(root_groups, minlength=graph.num_groups)
    missing = np.flatnonzero(present == 0)
    if missing.size:
        extra = np.asarray(
            [
                graph.group_members(i)[rng.integers(0, graph.group_members(i).size)]
                for i in missing
            ],
            dtype=np.int64,
        )
        parts.append(
            sample_rr_sets_batch(
                transpose,
                extra,
                rng,
                workers=workers,
                exec_backend=exec_backend,
                kernel=kernel,
            )
        )
        group_parts.append(labels[extra])
        root_groups = np.concatenate(group_parts)
    merged_ptr, merged_idx = concat_packed(parts)
    collection = RRCollection.from_packed(
        merged_ptr, merged_idx, root_groups, graph.num_nodes, graph.num_groups
    )
    return collection, reused


def _greedy_coverage_fraction(
    sets: Sequence[np.ndarray] | tuple[np.ndarray, np.ndarray],
    n: int,
    k: int,
) -> float:
    """Fraction of RR sets covered by the greedy size-k node set.

    Standard max-coverage greedy, run on the packed inverted index: the
    node->RR-set CSR comes from one stable argsort of the packed entries,
    per-node counts start as one ``bincount``, and each round's decrement
    gathers the freshly covered sets' members in a single flat pass.
    Accepts either the packed ``(set_indptr, set_indices)`` pair or the
    legacy list of per-set node arrays. Used only inside the doubling
    phase to certify OPT lower bounds.
    """
    if isinstance(sets, tuple):
        set_indptr, set_indices = sets
    else:
        if not len(sets):
            return 0.0
        set_indptr, set_indices = build_csr(list(sets))
    num_sets = set_indptr.size - 1
    if num_sets == 0:
        return 0.0
    mem_indptr, mem_indices, _ = invert_csr(set_indptr, set_indices, n)
    counts = np.bincount(set_indices, minlength=n)
    covered = np.zeros(num_sets, dtype=bool)
    total = 0
    for _ in range(k):
        best = int(np.argmax(counts))
        if counts[best] <= 0:
            break
        ids = mem_indices[mem_indptr[best]:mem_indptr[best + 1]]
        fresh = ids[~covered[ids]]
        if fresh.size:
            covered[fresh] = True
            total += fresh.size
            positions, _ = gather_csr_slices(set_indptr, fresh)
            counts -= np.bincount(set_indices[positions], minlength=n)
    return total / num_sets
