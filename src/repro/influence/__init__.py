"""Influence-maximization substrate: independent-cascade simulation,
reverse-influence sampling (RIS) and an IMM-style sample-size schedule.

The paper estimates influence spread with the RIS-based IMM algorithm
[Tang et al. 2015] and evaluates final solutions with 10,000 Monte-Carlo
cascade simulations; this package implements both halves.
"""

from repro.influence.engine import sample_rr_sets_batch
from repro.influence.ic_model import (
    monte_carlo_group_spread,
    monte_carlo_spread,
    simulate_cascade,
    simulate_cascades_batch,
)
from repro.influence.lt_model import LTModel
from repro.influence.ris import (
    RepairResult,
    RRCollection,
    affected_rr_sets,
    repair_rr_collection,
    repair_seed_sequence,
    sample_rr_collection,
)
from repro.influence.imm import imm_rr_collection, imm_sample_bound
from repro.influence.triggering import (
    TriggeringModel,
    ic_trigger_sampler,
    lt_trigger_sampler,
    topk_trigger_sampler,
)

__all__ = [
    "LTModel",
    "RepairResult",
    "RRCollection",
    "TriggeringModel",
    "affected_rr_sets",
    "ic_trigger_sampler",
    "imm_rr_collection",
    "imm_sample_bound",
    "lt_trigger_sampler",
    "monte_carlo_group_spread",
    "monte_carlo_spread",
    "repair_rr_collection",
    "repair_seed_sequence",
    "sample_rr_collection",
    "sample_rr_sets_batch",
    "simulate_cascade",
    "simulate_cascades_batch",
    "topk_trigger_sampler",
]
