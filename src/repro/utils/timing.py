"""Wall-clock timing helper used by solver results and the harness."""

from __future__ import annotations

import time


class Timer:
    """Context-manager stopwatch; re-entering *accumulates* elapsed time.

    Accumulation lets a solver time several phases with one timer and
    report their total.

    >>> with Timer() as t:
    ...     _ = sum(range(10))
    >>> t.elapsed >= 0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._start is not None
        self.elapsed += time.perf_counter() - self._start
        self._start = None

    def running(self) -> bool:
        """Whether the timer is currently inside a ``with`` block."""
        return self._start is not None
