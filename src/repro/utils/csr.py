"""CSR-style incidence helpers shared by the batch-oracle backends.

Coverage and influence both score a candidate pool by gathering each
candidate's incidence list (users covered / RR sets hit), masking the
entries the current solution already accounts for, and counting the
survivors per ``(candidate, group)`` cell. The ragged lists are stored
flattened (``indptr``/``indices``, as in a CSR sparse matrix) so the
whole pool is one NumPy gather plus one ``bincount`` pass.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def build_csr(arrays: Sequence[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Flatten ragged ``arrays`` into ``(indptr, indices)``.

    Entry ``j``'s values occupy ``indices[indptr[j]:indptr[j + 1]]``.
    """
    lengths = np.asarray([np.asarray(a).size for a in arrays], dtype=np.int64)
    indptr = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(lengths)])
    if lengths.sum():
        indices = np.concatenate([np.asarray(a, dtype=np.int64) for a in arrays])
    else:
        indices = np.zeros(0, dtype=np.int64)
    return indptr, indices


def invert_csr(
    indptr: np.ndarray, indices: np.ndarray, num_cols: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Invert a packed row->cols mapping into its col->rows CSR.

    Returns ``(inv_indptr, inv_rows, order)``: column ``c``'s owning rows
    occupy ``inv_rows[inv_indptr[c]:inv_indptr[c + 1]]`` in increasing
    row order (one stable argsort — within a column, flattened entries
    keep row order). ``order`` is the argsort permutation of the packed
    entries, so per-entry payloads travel along via ``payload[order]``
    (the graph transpose permutes its edge probabilities this way).
    """
    order = np.argsort(indices, kind="stable")
    rows = np.repeat(
        np.arange(indptr.size - 1, dtype=np.int64), np.diff(indptr)
    )
    inv_indptr = np.zeros(num_cols + 1, dtype=np.int64)
    inv_indptr[1:] = np.cumsum(np.bincount(indices, minlength=num_cols))
    return inv_indptr, rows[order], order


def gather_csr_slices(
    indptr: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Flat positions of every CSR entry of ``rows``, plus each entry's owner.

    Returns ``(positions, owners)`` where ``positions`` indexes the CSR
    data arrays and ``owners[t]`` is the index into ``rows`` whose slice
    produced ``positions[t]`` — the repeat/fancy-index gather that
    :func:`batch_group_counts` and the sampling engine's frontier
    expansion are built on.
    """
    starts = indptr[rows]
    lengths = indptr[rows + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    ends = np.cumsum(lengths)
    positions = np.arange(total, dtype=np.int64) + np.repeat(
        starts - (ends - lengths), lengths
    )
    owners = np.repeat(np.arange(rows.size, dtype=np.int64), lengths)
    return positions, owners


def concat_packed(
    parts: Sequence[tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate packed ``(indptr, indices)`` pairs into one pair."""
    if not parts:
        return np.zeros(1, dtype=np.int64), np.zeros(0, dtype=np.int64)
    if len(parts) == 1:
        return parts[0]
    indptrs, indices = zip(*parts)
    offsets = np.cumsum([0] + [ptr[-1] for ptr in indptrs[:-1]])
    merged_ptr = np.concatenate(
        [indptrs[0][:1]] + [ptr[1:] + off for ptr, off in zip(indptrs, offsets)]
    )
    return merged_ptr, np.concatenate(indices)


def splice_packed(
    indptr: np.ndarray,
    indices: np.ndarray,
    rows: np.ndarray,
    sub_indptr: np.ndarray,
    sub_indices: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Replace the slices of ``rows`` with the rows of a packed sub-CSR.

    Row ``rows[i]`` of ``(indptr, indices)`` is replaced by row ``i`` of
    ``(sub_indptr, sub_indices)``; all other rows keep their entries and
    order. Returns a fresh ``(indptr, indices)`` pair — row count is
    unchanged, total size shifts by the length difference of the
    replaced slices. ``rows`` must be duplicate-free.
    """
    num_rows = indptr.size - 1
    if sub_indptr.size - 1 != rows.size:
        raise ValueError(
            f"sub CSR has {sub_indptr.size - 1} rows, expected {rows.size}"
        )
    new_lengths = np.diff(indptr).copy()
    new_lengths[rows] = np.diff(sub_indptr)
    out_indptr = np.zeros(num_rows + 1, dtype=np.int64)
    np.cumsum(new_lengths, out=out_indptr[1:])
    out_indices = np.empty(int(out_indptr[-1]), dtype=indices.dtype)
    # Kept rows: one flat gather from the old arrays.
    keep_mask = np.ones(num_rows, dtype=bool)
    keep_mask[rows] = False
    kept = np.flatnonzero(keep_mask)
    src_pos, _ = gather_csr_slices(indptr, kept)
    dst_pos, _ = gather_csr_slices(out_indptr, kept)
    out_indices[dst_pos] = indices[src_pos]
    # Replaced rows: scatter the sub-CSR into the new slots.
    sub_pos, _ = gather_csr_slices(out_indptr, rows)
    out_indices[sub_pos] = sub_indices
    return out_indptr, out_indices


def merge_sorted_disjoint(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two sorted arrays with no common elements into one sorted array.

    Linear-ish (`searchsorted` + scatter) alternative to re-sorting the
    concatenation: used by the incremental inverted-index repair, where
    the surviving entry keys and the freshly resampled entry keys are
    disjoint by construction (they belong to different RR-set ids).
    """
    out = np.empty(a.size + b.size, dtype=np.result_type(a, b))
    pos_b = np.searchsorted(a, b, side="left")
    idx_b = pos_b + np.arange(b.size, dtype=np.int64)
    mask = np.ones(out.size, dtype=bool)
    mask[idx_b] = False
    out[idx_b] = b
    out[mask] = a
    return out


def segment_spans(
    indptr: np.ndarray, max_entries: int
) -> list[tuple[int, int]]:
    """Cut a packed CSR into row spans of at most ``max_entries`` entries.

    Returns ``[(row_lo, row_hi), ...]`` covering all rows in order. Every
    span holds at least one row, so a single row larger than
    ``max_entries`` gets a span of its own rather than failing — segment
    byte budgets are targets, not hard guarantees, for pathological rows.
    """
    num_rows = indptr.size - 1
    if num_rows <= 0:
        return []
    max_entries = max(int(max_entries), 1)
    spans: list[tuple[int, int]] = []
    lo = 0
    while lo < num_rows:
        # Largest hi with indptr[hi] - indptr[lo] <= max_entries …
        hi = int(
            np.searchsorted(indptr, indptr[lo] + max_entries, side="right")
        ) - 1
        hi = min(max(hi, lo + 1), num_rows)  # … but always take ≥ 1 row.
        spans.append((lo, hi))
        lo = hi
    return spans


def invert_csr_segment(
    indptr: np.ndarray,
    indices: np.ndarray,
    num_cols: int,
    row_offset: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Segment-aware :func:`invert_csr`: rows are reported as global ids.

    The segmented RR store keeps one inverted index per segment whose
    entries are *global* RR-set ids (``local row + row_offset``), so that
    per-segment results concatenate into exactly the flat inverted index:
    segment starts increase, hence each column's ids stay sorted across
    the concatenation. The ``order`` permutation of :func:`invert_csr` is
    dropped — segments carry no per-entry payloads.
    """
    inv_indptr, inv_rows, _ = invert_csr(indptr, indices, num_cols)
    return inv_indptr, inv_rows + np.int64(row_offset)


def batch_group_counts(
    indptr: np.ndarray,
    indices: np.ndarray,
    items: np.ndarray,
    already_counted: np.ndarray,
    labels: np.ndarray,
    num_groups: int,
) -> np.ndarray:
    """Per-``(item, group)`` counts of *fresh* incidence entries.

    For each requested item, gathers its slice of ``indices``, drops the
    entries flagged in the boolean ``already_counted`` mask, maps the
    survivors through ``labels`` and counts them per group — all in one
    flat ``bincount`` pass. Returns an integer array of shape
    ``(len(items), num_groups)``.
    """
    starts = indptr[items]
    lengths = indptr[items + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return np.zeros((items.size, num_groups), dtype=np.int64)
    ends = np.cumsum(lengths)
    # Flat gather of every requested slice, tagged by the row (candidate)
    # it belongs to: position t of row r maps to indices[starts[r] + t].
    flat = np.arange(total) + np.repeat(starts - (ends - lengths), lengths)
    entries = indices[flat]
    row_id = np.repeat(np.arange(items.size), lengths)
    fresh = ~already_counted[entries]
    bins = row_id[fresh] * num_groups + labels[entries[fresh]]
    return np.bincount(bins, minlength=items.size * num_groups).reshape(
        items.size, num_groups
    )
