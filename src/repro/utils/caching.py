"""Byte-budgeted LRU caching for long-lived processes.

The harness and the service layer keep expensive derived state warm
across requests — sampled RR collections, benefit matrices, Monte-Carlo
evaluation bundles. A plain ``dict`` cache is a slow leak in a process
that serves traffic for hours, and :func:`functools.lru_cache` bounds
*entries*, not *bytes*, which is the wrong unit when one entry is a
30k-sample RR collection and the next a two-float tuple.

:class:`BoundedCache` is an LRU map whose eviction unit is an estimated
byte size (:func:`estimate_nbytes`), with hit/miss/eviction counters
(:class:`CacheStats`) that the service surfaces in responses.
:func:`lru_bound` is the decorator form — a drop-in replacement for the
unbounded module-level dicts ``experiments/harness.py`` used to keep.

Two hooks cover the awkward cases:

* ``sizeof`` — values report their own footprint via a ``memory_bytes()``
  method (e.g. :class:`repro.problems.influence.InfluenceObjective`) or
  fall back to a recursive estimate over arrays and containers;
* ``validate`` — identity-pinned entries (the harness keys on ``id()`` of
  a graph) re-check their anchor object on every hit, so a recycled id
  can never serve a stale value.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from dataclasses import dataclass
from functools import wraps
from typing import Any, Callable, Hashable, Iterator, Optional

import numpy as np

__all__ = [
    "BoundedCache",
    "CacheStats",
    "estimate_nbytes",
    "lru_bound",
]


def estimate_nbytes(value: Any, _seen: Optional[set[int]] = None) -> int:
    """Best-effort resident size of ``value`` in bytes.

    NumPy arrays report ``nbytes``; objects exposing ``memory_bytes()``
    are trusted; containers recurse (cycle-safe); everything else falls
    back to :func:`sys.getsizeof`. The estimate is for cache accounting,
    not profiling — it only needs to rank entries and track totals to
    the right order of magnitude.
    """
    if _seen is None:
        _seen = set()
    obj_id = id(value)
    if obj_id in _seen:
        return 0
    _seen.add(obj_id)
    if isinstance(value, np.memmap):
        # Memory-mapped arrays are backed by the file system, not the
        # process heap: the pages are reclaimable at any time, so for
        # budget accounting they cost nothing while cold. Charging the
        # full file size would make any memmap instantly evict a cache.
        return 0
    if isinstance(value, np.ndarray):
        if value.base is not None and isinstance(value.base, np.memmap):
            return 0
        return int(value.nbytes)
    memory_bytes = getattr(value, "memory_bytes", None)
    if callable(memory_bytes):
        return int(memory_bytes())
    if isinstance(value, (str, bytes, bytearray)):
        return int(sys.getsizeof(value))
    if isinstance(value, dict):
        return int(sys.getsizeof(value)) + sum(
            estimate_nbytes(k, _seen) + estimate_nbytes(v, _seen)
            for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return int(sys.getsizeof(value)) + sum(
            estimate_nbytes(item, _seen) for item in value
        )
    slots = getattr(value, "__slots__", None)
    if slots:
        return int(sys.getsizeof(value)) + sum(
            estimate_nbytes(getattr(value, name), _seen)
            for name in slots
            if hasattr(value, name)
        )
    attrs = getattr(value, "__dict__", None)
    if attrs is not None:
        return int(sys.getsizeof(value)) + estimate_nbytes(attrs, _seen)
    return int(sys.getsizeof(value))


@dataclass
class CacheStats:
    """Counters for one :class:`BoundedCache` (mutated in place)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    rejected: int = 0  # values larger than the whole budget, never stored
    invalidations: int = 0  # hits discarded by a failed validate()
    current_bytes: int = 0
    budget_bytes: int = 0
    entries: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        """JSON-safe snapshot (service responses embed this)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "rejected": self.rejected,
            "invalidations": self.invalidations,
            "current_bytes": self.current_bytes,
            "budget_bytes": self.budget_bytes,
            "entries": self.entries,
            "hit_ratio": round(self.hit_ratio, 6),
        }


@dataclass
class _Entry:
    value: Any
    nbytes: int
    anchor: Any = None  # optional identity pin checked by validate hooks


class BoundedCache:
    """LRU cache evicting by estimated byte footprint.

    Invariant: ``stats.current_bytes <= budget_bytes`` after every
    operation. A value whose own estimate exceeds the entire budget is
    *not* stored (counted in ``stats.rejected``) — the caller still gets
    it back from :meth:`get_or_create`, it just will not be warm next
    time.
    """

    def __init__(
        self,
        budget_bytes: int,
        *,
        sizeof: Callable[[Any], int] = estimate_nbytes,
    ) -> None:
        if budget_bytes <= 0:
            raise ValueError(
                f"budget_bytes must be positive, got {budget_bytes}"
            )
        self._budget = int(budget_bytes)
        self._sizeof = sizeof
        self._entries: OrderedDict[Hashable, _Entry] = OrderedDict()
        self.stats = CacheStats(budget_bytes=self._budget)

    # -- mapping-ish surface ---------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries  # no stats side effect

    def keys(self) -> Iterator[Hashable]:
        return iter(list(self._entries))

    @property
    def budget_bytes(self) -> int:
        return self._budget

    @property
    def current_bytes(self) -> int:
        return self.stats.current_bytes

    # -- core operations ---------------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return default
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry.value

    def put(self, key: Hashable, value: Any, *, anchor: Any = None) -> None:
        """Insert/replace ``key``; evicts LRU entries to stay in budget."""
        nbytes = int(self._sizeof(value))
        old = self._entries.pop(key, None)
        if old is not None:
            self.stats.current_bytes -= old.nbytes
        if nbytes > self._budget:
            self.stats.rejected += 1
            self.stats.entries = len(self._entries)
            return
        while (
            self._entries
            and self.stats.current_bytes + nbytes > self._budget
        ):
            _, evicted = self._entries.popitem(last=False)
            self.stats.current_bytes -= evicted.nbytes
            self.stats.evictions += 1
        self._entries[key] = _Entry(value, nbytes, anchor)
        self.stats.current_bytes += nbytes
        self.stats.entries = len(self._entries)

    def get_or_create(
        self,
        key: Hashable,
        factory: Callable[[], Any],
        *,
        validate: Optional[Callable[[Any], bool]] = None,
        anchor: Any = None,
    ) -> Any:
        """Return the cached value, building and storing it on a miss.

        ``validate`` re-checks a hit before trusting it (version
        counters, config pins); a failed check counts as an invalidation
        and falls through to the factory. ``anchor`` pins an auxiliary
        object alongside the value (e.g. the graph whose ``id()`` is
        part of the key): it is kept alive by the entry — closing the
        recycled-``id()`` hole — checked *by identity* on every hit, and
        excluded from the entry's byte estimate (anchors are shared, not
        cache-owned).
        """
        entry = self._entries.get(key)
        if entry is not None:
            anchored = anchor is None or entry.anchor is anchor
            if anchored and (validate is None or validate(entry.value)):
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry.value
            self._entries.pop(key)
            self.stats.current_bytes -= entry.nbytes
            self.stats.invalidations += 1
            self.stats.entries = len(self._entries)
        self.stats.misses += 1
        value = factory()
        self.put(key, value, anchor=anchor)
        return value

    def reaccount(self, key: Hashable) -> bool:
        """Re-estimate ``key``'s byte footprint after in-place mutation.

        Repairing a cached value (e.g. an influence objective whose RR
        collection was spliced) changes its resident size without going
        through :meth:`put`, which would silently corrupt the byte
        accounting. This re-runs the size estimator, adjusts the total,
        and restores the budget invariant: other entries are evicted LRU
        while over budget, and if the entry alone now exceeds the whole
        budget it is dropped (counted in ``stats.rejected``, mirroring
        :meth:`put`). Returns ``True`` iff the entry is still cached.
        Unknown keys return ``False`` without touching the stats.
        """
        entry = self._entries.get(key)
        if entry is None:
            return False
        nbytes = int(self._sizeof(entry.value))
        self.stats.current_bytes += nbytes - entry.nbytes
        entry.nbytes = nbytes
        if nbytes > self._budget:
            self._entries.pop(key)
            self.stats.current_bytes -= nbytes
            self.stats.rejected += 1
            self.stats.entries = len(self._entries)
            return False
        while self.stats.current_bytes > self._budget:
            victim_key = next(
                k for k in self._entries if k != key
            )
            victim = self._entries.pop(victim_key)
            self.stats.current_bytes -= victim.nbytes
            self.stats.evictions += 1
        self.stats.entries = len(self._entries)
        return True

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Read without touching recency or hit/miss counters."""
        entry = self._entries.get(key)
        return default if entry is None else entry.value

    def pop(self, key: Hashable, default: Any = None) -> Any:
        entry = self._entries.pop(key, None)
        if entry is None:
            return default
        self.stats.current_bytes -= entry.nbytes
        self.stats.entries = len(self._entries)
        return entry.value

    def clear(self) -> None:
        self._entries.clear()
        self.stats.current_bytes = 0
        self.stats.entries = 0


def _default_key(args: tuple, kwargs: dict) -> Hashable:
    return (args, tuple(sorted(kwargs.items())))


def lru_bound(
    budget_bytes: int,
    *,
    key: Optional[Callable[..., Hashable]] = None,
    validate: Optional[Callable[..., bool]] = None,
    sizeof: Callable[[Any], int] = estimate_nbytes,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator: memoise ``fn`` in a :class:`BoundedCache`.

    Parameters
    ----------
    budget_bytes:
        Total byte budget for cached return values.
    key:
        Optional ``key(*args, **kwargs)`` — required when the arguments
        are unhashable (datasets, graphs); defaults to the argument
        tuple itself.
    validate:
        Optional ``validate(value, *args, **kwargs)`` re-checked on
        every hit; returning ``False`` discards the entry and recomputes
        (used for identity-pinned graph entries).
    sizeof:
        Value-size estimator (defaults to :func:`estimate_nbytes`).

    The wrapped function gains ``.cache`` (the :class:`BoundedCache`),
    ``.cache_stats()`` and ``.cache_clear()``.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        cache = BoundedCache(budget_bytes, sizeof=sizeof)

        @wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            cache_key = (
                key(*args, **kwargs) if key is not None
                else _default_key(args, kwargs)
            )
            check = (
                (lambda value: validate(value, *args, **kwargs))
                if validate is not None
                else None
            )
            return cache.get_or_create(
                cache_key, lambda: fn(*args, **kwargs), validate=check
            )

        wrapper.cache = cache  # type: ignore[attr-defined]
        wrapper.cache_stats = lambda: cache.stats  # type: ignore[attr-defined]
        wrapper.cache_clear = cache.clear  # type: ignore[attr-defined]
        return wrapper

    return decorate
