"""Persistent worker pools: thread, process, and serial backends.

Every hot path of the library — RR-set generation, Monte-Carlo cascade
evaluation, GreeDi shard solves — decomposes into independent work units
over read-only arrays. This module runs those units over a *persistent*
pool while keeping three guarantees:

* **One pool per (backend, width), warm across calls.** The first
  dispatch spawns the pool; every later dispatch reuses it. Pool spawn
  (fork + interpreter warm-up for processes, thread creation for
  threads) is paid once per session, not once per sampling call —
  :func:`pool_stats` counts spawns vs. warm dispatches and the
  ``pool_reuse`` benchmark metric gates the ratio.
* **Deterministic decomposition.** The work-unit partition and the
  per-unit RNG streams (:func:`spawn_seed_sequences`, backed by
  ``SeedSequence.spawn``) depend only on the problem inputs — never on
  the worker count or the backend — so a fixed seed yields
  bitwise-identical results whether the units run serially, on threads,
  or on eight processes.
* **Copy semantics are backend-invariant.** ``payload`` reaches unit
  functions as a per-worker pickled *copy* on both pool backends
  (threads round-trip it through ``pickle`` exactly so that worker-side
  mutation behaves like a process copy); the serial fallback passes the
  caller's original, unchanged from the pre-pool behaviour.

Backends:

* ``"thread"`` (default) — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  The shared arrays are passed to workers directly (zero-copy, no
  export); the kernels release the GIL inside NumPy ufuncs and compiled
  ``nogil`` loops, which is where all the time goes.
* ``"process"`` — a long-lived ``fork``-start
  :class:`~concurrent.futures.ProcessPoolExecutor`. Bulk arrays travel
  through :mod:`multiprocessing.shared_memory` (exported once per call,
  attached once per worker via a small bounded cache); ``payload``
  rides a pickled shared-memory blob. Falls back to serial where
  ``fork`` is unavailable.
* ``"serial"`` — the in-process loop: same unit functions, same order,
  no pool.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import pickle
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Iterator, Optional, Sequence

import numpy as np

from repro.utils.rng import spawn_seed_sequences

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "DEFAULT_UNITS",
    "SharedArrays",
    "WorkerContext",
    "WorkerPool",
    "attach_shared",
    "available_cpus",
    "fork_available",
    "get_pool",
    "parallel_imap",
    "parallel_map",
    "pool_stats",
    "pool_width",
    "process_context",
    "reset_pools_after_fork",
    "resolve_backend",
    "resolve_workers",
    "shutdown_pools",
    "spawn_seed_sequences",  # canonical impl lives in repro.utils.rng
    "split_ranges",
    "unit_size_for",
]

WorkerFn = Callable[["WorkerContext", Any], Any]

#: Target number of work units per parallel call. Fixed (never derived
#: from the worker count) so the decomposition — and therefore every
#: per-unit RNG stream — is identical no matter how many workers
#: execute it. 16 units keep a 4-worker pool load-balanced (4 units per
#: worker) without fragmenting the NumPy batches that make each unit fast.
DEFAULT_UNITS = 16

#: Recognised execution backends, in documentation order.
BACKENDS = ("serial", "thread", "process")

#: Backend used when callers pass ``None``: threads share the CSR
#: arrays zero-copy and the kernels drop the GIL inside NumPy/compiled
#: loops, so this is the right default on every platform (including
#: those without ``fork``).
DEFAULT_BACKEND = "thread"


def fork_available() -> bool:
    """Whether the platform supports the ``fork`` start method."""
    return "fork" in mp.get_all_start_methods()


def process_context() -> mp.context.BaseContext:
    """The multiprocessing context long-lived service children use.

    ``fork`` where available (cheap, inherits the imported interpreter);
    ``spawn`` elsewhere. Callers that fork *must* call
    :func:`reset_pools_after_fork` first thing in the child — inherited
    executor threads do not survive a fork.
    """
    return mp.get_context("fork" if fork_available() else "spawn")


def reset_pools_after_fork() -> None:
    """Discard inherited pool state in a freshly forked child.

    A fork copies the registry dict and its lock but none of the worker
    threads behind the pooled executors, so any inherited
    :class:`WorkerPool` would hang on first dispatch (and the inherited
    lock may have been held mid-``get_pool`` at fork time). Replace the
    lock, drop the registry *without* shutdown (the executors' threads
    belong to the parent), and zero the counters so the child's
    telemetry starts clean.
    """
    global _POOLS_LOCK, _POOL_SPAWNS, _SERIAL_DISPATCHES
    _POOLS_LOCK = threading.Lock()
    _POOLS.clear()
    _POOL_SPAWNS = 0
    _SERIAL_DISPATCHES = 0


def available_cpus() -> int:
    """CPUs this process may actually run on.

    ``sched_getaffinity`` respects cgroup/affinity limits (a container
    pinned to 2 of 64 cores reports 2); ``os.cpu_count`` is the fallback
    where affinity masks do not exist.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return len(getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a user-facing ``workers`` knob to a positive int.

    ``None`` and ``0`` mean serial (1); negative values request one
    worker per available CPU (:func:`available_cpus`).
    """
    if workers is None or workers == 0:
        return 1
    if workers < 0:
        return available_cpus()
    return int(workers)


def resolve_backend(backend: Optional[str]) -> str:
    """Normalise a user-facing backend name (``None`` → the default)."""
    if backend is None:
        return DEFAULT_BACKEND
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r} (expected one of {BACKENDS})"
        )
    return backend


def pool_width(
    workers: Optional[int], num_tasks: int, backend: Optional[str] = None
) -> int:
    """Workers :func:`parallel_map` will actually use for a task list.

    The single source of truth for the serial-fallback rule: capped at
    the task count; 1 for the serial backend and for the process backend
    on platforms without ``fork``. Callers that need to know whether
    work ran on pool copies (e.g. GreeDi's oracle-counter fold-back)
    must consult this rather than re-deriving it.
    """
    resolved = resolve_backend(backend)
    count = min(resolve_workers(workers), num_tasks)
    if count <= 1 or resolved == "serial":
        return 1
    if resolved == "process" and not fork_available():
        return 1
    return count


def split_ranges(total: int, unit_size: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``[lo, hi)`` units of ``unit_size``."""
    if unit_size <= 0:
        raise ValueError(f"unit_size must be positive, got {unit_size}")
    return [(lo, min(lo + unit_size, total)) for lo in range(0, total, unit_size)]


def unit_size_for(total: int, *, cap: Optional[int] = None) -> int:
    """Deterministic work-unit size for ``total`` independent instances.

    Targets :data:`DEFAULT_UNITS` units, additionally honouring ``cap``
    (a memory ceiling such as the sampling engine's visited-buffer
    budget). Depends only on the inputs, never on the worker count.
    """
    if total <= 0:
        return 1
    size = -(-total // DEFAULT_UNITS)  # ceil division
    if cap is not None:
        size = min(size, max(int(cap), 1))
    return max(size, 1)


@dataclass
class WorkerContext:
    """What a unit function sees besides its task.

    ``arrays`` is the tuple of shared read-only ndarrays (the CSR triple
    in the sampling engine), ``payload`` an arbitrary picklable object
    delivered once per worker and call (the objective in GreeDi, the
    kernel name in the sampling engine). On both pool backends the
    payload is a pickled copy; in the serial fallback both fields are
    simply the caller's originals.
    """

    arrays: Optional[tuple[np.ndarray, ...]] = None
    payload: Any = None


class SharedArrays:
    """Export a tuple of ndarrays into named shared-memory segments.

    Use as a context manager in the parent::

        with SharedArrays(arrays) as shared:
            pool.map(fn, tasks, ...)

    Workers rebuild zero-copy views via :func:`attach_shared`. The parent
    owns the segments: ``__exit__`` closes and unlinks them.
    """

    def __init__(self, arrays: Sequence[np.ndarray]) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self._specs: list[tuple[str, str, tuple[int, ...]]] = []
        try:
            for array in arrays:
                array = np.ascontiguousarray(array)
                segment = shared_memory.SharedMemory(
                    create=True, size=max(array.nbytes, 1)
                )
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
                view[...] = array
                self._segments.append(segment)
                self._specs.append((segment.name, array.dtype.str, array.shape))
        except BaseException:
            self.close(unlink=True)
            raise

    def descriptor(self) -> list[tuple[str, str, tuple[int, ...]]]:
        """Picklable ``(name, dtype, shape)`` list for :func:`attach_shared`."""
        return list(self._specs)

    def close(self, *, unlink: bool = True) -> None:
        for segment in self._segments:
            try:
                segment.close()
                if unlink:
                    segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []
        self._specs = []

    def __enter__(self) -> "SharedArrays":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close(unlink=True)


def attach_shared(
    descriptor: Sequence[tuple[str, str, tuple[int, ...]]],
) -> tuple[tuple[np.ndarray, ...], list[shared_memory.SharedMemory]]:
    """Attach to exported segments; returns (views, open segments).

    The segment handles must stay referenced as long as the views are in
    use — dropping them invalidates the buffers.
    """
    segments = []
    views = []
    for name, dtype, shape in descriptor:
        segment = shared_memory.SharedMemory(name=name)
        segments.append(segment)
        views.append(np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf))
    return tuple(views), segments


class _PayloadBlob:
    """A pickled payload in one shared-memory segment (process backend)."""

    def __init__(self, payload: Any) -> None:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self._segment = shared_memory.SharedMemory(
            create=True, size=max(len(blob), 1)
        )
        self._segment.buf[: len(blob)] = blob
        self.spec = (self._segment.name, len(blob))

    def close(self) -> None:
        try:
            self._segment.close()
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


#: Process-worker-side context cache. One entry per (descriptor,
#: payload-blob) pair — in steady state that is "the current call", so
#: segments attach and the payload unpickles once per worker per call,
#: mirroring the old pool-initializer semantics without respawning the
#: pool. Bounded so interleaved calls cannot pin arbitrary segments.
_WORKER_CACHE: "OrderedDict[Any, tuple[WorkerContext, list]]" = OrderedDict()
_WORKER_CACHE_SIZE = 4


def _pool_context(  # pragma: no cover - process-worker-side
    descriptor: Optional[Sequence[tuple[str, str, tuple[int, ...]]]],
    payload_spec: Optional[tuple[str, int]],
) -> WorkerContext:
    key = (
        tuple(name for name, _, _ in descriptor) if descriptor is not None else None,
        payload_spec[0] if payload_spec is not None else None,
    )
    hit = _WORKER_CACHE.get(key)
    if hit is not None:
        _WORKER_CACHE.move_to_end(key)
        return hit[0]
    arrays: Optional[tuple[np.ndarray, ...]] = None
    segments: list[shared_memory.SharedMemory] = []
    if descriptor is not None:
        arrays, segments = attach_shared(descriptor)
    payload = None
    if payload_spec is not None:
        name, size = payload_spec
        blob = shared_memory.SharedMemory(name=name)
        try:
            payload = pickle.loads(bytes(blob.buf[:size]))
        finally:
            blob.close()
    context = WorkerContext(arrays=arrays, payload=payload)
    _WORKER_CACHE[key] = (context, segments)
    while len(_WORKER_CACHE) > _WORKER_CACHE_SIZE:
        _, (_, stale) = _WORKER_CACHE.popitem(last=False)
        for segment in stale:
            try:
                segment.close()
            except Exception:
                pass
    return context


def _drop_worker_cache() -> None:  # pragma: no cover - process-worker-side
    while _WORKER_CACHE:
        _, (_, stale) = _WORKER_CACHE.popitem(last=False)
        for segment in stale:
            try:
                segment.close()
            except Exception:
                pass


def _init_process_worker() -> None:  # pragma: no cover - process-worker-side
    atexit.register(_drop_worker_cache)


def _run_pool_task(  # pragma: no cover - process-worker-side
    packed: tuple[WorkerFn, Any, Any, Any],
) -> Any:
    fn, task, descriptor, payload_spec = packed
    return fn(_pool_context(descriptor, payload_spec), task)


class WorkerPool:
    """A persistent executor of one backend and width.

    Obtain instances through :func:`get_pool` — the registry guarantees
    one live pool per (backend, width) and hooks shutdown at exit.
    ``dispatches``/``tasks_run`` count warm usage for telemetry.
    """

    def __init__(self, backend: str, width: int) -> None:
        if backend not in ("thread", "process"):
            raise ValueError(f"WorkerPool backend must be thread|process, got {backend!r}")
        if width < 2:
            raise ValueError(f"WorkerPool width must be >= 2, got {width}")
        self.backend = backend
        self.width = width
        self.dispatches = 0
        self.tasks_run = 0
        if backend == "thread":
            self._executor: Any = ThreadPoolExecutor(
                max_workers=width, thread_name_prefix="repro-pool"
            )
        else:
            self._executor = ProcessPoolExecutor(
                max_workers=width,
                mp_context=mp.get_context("fork"),
                initializer=_init_process_worker,
            )

    # -- dispatch -----------------------------------------------------

    def _thread_runner(
        self,
        fn: WorkerFn,
        shared: Optional[Sequence[np.ndarray]],
        payload: Any,
    ) -> Callable[[Any], Any]:
        arrays = tuple(shared) if shared is not None else None
        blob = (
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            if payload is not None
            else None
        )
        local = threading.local()

        def run(task: Any) -> Any:
            context = getattr(local, "context", None)
            if context is None:
                # One pickled copy per thread per call — worker-side
                # payload mutation behaves exactly like a process copy.
                local.context = context = WorkerContext(
                    arrays=arrays,
                    payload=pickle.loads(blob) if blob is not None else None,
                )
            return fn(context, task)

        return run

    def map(
        self,
        fn: WorkerFn,
        tasks: Sequence[Any],
        *,
        shared: Optional[Sequence[np.ndarray]] = None,
        payload: Any = None,
    ) -> list[Any]:
        """Run ``fn(context, task)`` for every task, results in task order."""
        return list(self.imap(fn, tasks, shared=shared, payload=payload))

    def imap(
        self,
        fn: WorkerFn,
        tasks: Sequence[Any],
        *,
        shared: Optional[Sequence[np.ndarray]] = None,
        payload: Any = None,
        window: Optional[int] = None,
    ) -> Iterator[Any]:
        """Lazily yield results in task order, bounding in-flight tasks.

        With ``window`` (default ``2 * width``) at most that many tasks
        are submitted ahead of the consumer — the streaming appender of
        the out-of-core tier bounds its resident packed chunks this way.
        """
        tasks = list(tasks)
        self.dispatches += 1
        self.tasks_run += len(tasks)
        if window is None:
            window = 2 * self.width
        window = max(int(window), 1)
        if self.backend == "thread":
            run = self._thread_runner(fn, shared, payload)
            return self._window_iter(
                [(run, (task,)) for task in tasks], window, cleanup=None
            )
        exported = SharedArrays(shared) if shared is not None else None
        blob = _PayloadBlob(payload) if payload is not None else None
        descriptor = exported.descriptor() if exported is not None else None
        spec = blob.spec if blob is not None else None

        def cleanup() -> None:
            if exported is not None:
                exported.close(unlink=True)
            if blob is not None:
                blob.close()

        return self._window_iter(
            [
                (_run_pool_task, ((fn, task, descriptor, spec),))
                for task in tasks
            ],
            window,
            cleanup=cleanup,
        )

    def _window_iter(
        self,
        calls: list[tuple[Callable, tuple]],
        window: int,
        cleanup: Optional[Callable[[], None]],
    ) -> Iterator[Any]:
        try:
            pending = []
            next_submit = 0
            while next_submit < len(calls) or pending:
                while next_submit < len(calls) and len(pending) < window:
                    call, args = calls[next_submit]
                    pending.append(self._executor.submit(call, *args))
                    next_submit += 1
                future = pending.pop(0)
                yield future.result()
        finally:
            if cleanup is not None:
                cleanup()

    def submit(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Submit one plain callable, returning its ``Future``.

        This satisfies the ``Executor`` protocol that
        ``loop.run_in_executor`` expects, so the asyncio TCP front-end
        (:mod:`repro.service.server`) can funnel engine batches onto the
        persistent pool directly. Thread backend only: a process pool
        would pickle ``fn``, and the server's engine-bound callables are
        not picklable (nor should engine state ever cross a fork).
        """
        if self.backend != "thread":
            raise ValueError("submit() requires the thread backend")
        self.dispatches += 1
        self.tasks_run += 1
        return self._executor.submit(fn, *args)

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True)


# -- pool registry ----------------------------------------------------

_POOLS: dict[tuple[str, int], WorkerPool] = {}
_POOLS_LOCK = threading.Lock()
_POOL_SPAWNS = 0
_SERIAL_DISPATCHES = 0
_ATEXIT_HOOKED = False


def get_pool(backend: str, width: int) -> WorkerPool:
    """The persistent pool for (backend, width); spawned on first use."""
    backend = resolve_backend(backend)
    if backend == "serial":
        raise ValueError("the serial backend has no pool")
    key = (backend, int(width))
    global _POOL_SPAWNS, _ATEXIT_HOOKED
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is None:
            pool = WorkerPool(backend, int(width))
            _POOLS[key] = pool
            _POOL_SPAWNS += 1
            if not _ATEXIT_HOOKED:
                atexit.register(shutdown_pools)
                _ATEXIT_HOOKED = True
        return pool


def shutdown_pools() -> None:
    """Shut down every registry pool (idempotent; re-spawn on next use)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown()


def pool_stats() -> dict:
    """Registry telemetry for the service ``stats`` op and benchmarks."""
    with _POOLS_LOCK:
        active = [
            {
                "backend": pool.backend,
                "width": pool.width,
                "dispatches": pool.dispatches,
                "tasks_run": pool.tasks_run,
            }
            for pool in _POOLS.values()
        ]
    return {
        "pool_spawns": _POOL_SPAWNS,
        "serial_dispatches": _SERIAL_DISPATCHES,
        "active_pools": active,
    }


def _serial_results(
    fn: WorkerFn,
    tasks: Sequence[Any],
    shared: Optional[Sequence[np.ndarray]],
    payload: Any,
) -> Iterator[Any]:
    global _SERIAL_DISPATCHES
    _SERIAL_DISPATCHES += 1
    context = WorkerContext(
        arrays=tuple(shared) if shared is not None else None,
        payload=payload,
    )
    return (fn(context, task) for task in tasks)


def parallel_map(
    fn: WorkerFn,
    tasks: Sequence[Any],
    *,
    workers: Optional[int] = None,
    shared: Optional[Sequence[np.ndarray]] = None,
    payload: Any = None,
    backend: Optional[str] = None,
) -> list[Any]:
    """Run ``fn(context, task)`` for every task, results in task order.

    ``fn`` must be a module-level function (pickled by reference on the
    process backend). ``shared`` arrays reach workers zero-copy on the
    thread backend and through shared memory on the process backend;
    ``payload`` arrives as one pickled copy per worker per call. Falls
    back to an in-process loop — same functions, same order, no pool —
    whenever :func:`pool_width` resolves to 1.
    """
    tasks = list(tasks)
    resolved = resolve_backend(backend)
    count = pool_width(workers, len(tasks), backend=resolved)
    if count <= 1:
        return list(_serial_results(fn, tasks, shared, payload))
    return get_pool(resolved, count).map(fn, tasks, shared=shared, payload=payload)


def parallel_imap(
    fn: WorkerFn,
    tasks: Sequence[Any],
    *,
    workers: Optional[int] = None,
    shared: Optional[Sequence[np.ndarray]] = None,
    payload: Any = None,
    backend: Optional[str] = None,
    window: Optional[int] = None,
) -> Iterator[Any]:
    """Streaming :func:`parallel_map`: yield results lazily in task order.

    At most ``window`` tasks (default twice the pool width) are in
    flight ahead of the consumer, so a byte-budgeted appender — the
    out-of-core RR store — bounds its resident results. The serial
    fallback evaluates one task per ``next()``.
    """
    tasks = list(tasks)
    resolved = resolve_backend(backend)
    count = pool_width(workers, len(tasks), backend=resolved)
    if count <= 1:
        return _serial_results(fn, tasks, shared, payload)
    return get_pool(resolved, count).imap(
        fn, tasks, shared=shared, payload=payload, window=window
    )
