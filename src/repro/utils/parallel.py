"""Shared-memory process-pool execution backend.

Every hot path of the library — RR-set generation, Monte-Carlo cascade
evaluation, GreeDi shard solves — decomposes into independent work units
over read-only arrays. This module runs those units across real OS
processes while keeping three guarantees:

* **Shared memory, not pickling, for bulk data.** The CSR arrays of a
  graph (indptr/indices/probs) are exported once into
  :mod:`multiprocessing.shared_memory` segments; workers attach zero-copy
  views instead of deserialising megabytes per task.
* **Deterministic decomposition.** The work-unit partition and the
  per-unit RNG streams (:func:`spawn_seed_sequences`, backed by
  ``SeedSequence.spawn``) depend only on the problem inputs — never on
  the worker count — so a fixed seed yields bitwise-identical results
  whether the units run on one process or eight.
* **Graceful serial fallback.** ``workers`` of ``None``/``0``/``1``, a
  platform without ``fork``, or a task list shorter than two units all
  run the same unit functions in-process, no pool, no shared-memory
  round-trip.

The pool itself is a thin wrapper over
:class:`concurrent.futures.ProcessPoolExecutor` with the ``fork`` start
method: workers inherit the parent's modules, the initializer attaches
the shared segments exactly once per worker, and results come back in
task order.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.utils.rng import spawn_seed_sequences

__all__ = [
    "DEFAULT_UNITS",
    "SharedArrays",
    "WorkerContext",
    "attach_shared",
    "fork_available",
    "parallel_map",
    "pool_width",
    "resolve_workers",
    "spawn_seed_sequences",  # canonical impl lives in repro.utils.rng
    "split_ranges",
    "unit_size_for",
]

WorkerFn = Callable[["WorkerContext", Any], Any]

#: Target number of work units per parallel call. Fixed (never derived
#: from the worker count) so the decomposition — and therefore every
#: per-unit RNG stream — is identical no matter how many processes
#: execute it. 16 units keep a 4-worker pool load-balanced (4 units per
#: worker) without fragmenting the NumPy batches that make each unit fast.
DEFAULT_UNITS = 16


def fork_available() -> bool:
    """Whether the platform supports the ``fork`` start method."""
    return "fork" in mp.get_all_start_methods()


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a user-facing ``workers`` knob to a positive int.

    ``None`` and ``0`` mean serial (1); negative values request one
    worker per available CPU (``os.cpu_count()``).
    """
    if workers is None or workers == 0:
        return 1
    if workers < 0:
        return os.cpu_count() or 1
    return int(workers)


def pool_width(workers: Optional[int], num_tasks: int) -> int:
    """Processes :func:`parallel_map` will actually use for a task list.

    The single source of truth for the serial-fallback rule: capped at
    the task count, and 1 whenever the platform lacks ``fork``. Callers
    that need to know whether work ran on pool copies (e.g. GreeDi's
    oracle-counter fold-back) must consult this rather than re-deriving
    it.
    """
    count = min(resolve_workers(workers), num_tasks)
    if count <= 1 or not fork_available():
        return 1
    return count


def split_ranges(total: int, unit_size: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``[lo, hi)`` units of ``unit_size``."""
    if unit_size <= 0:
        raise ValueError(f"unit_size must be positive, got {unit_size}")
    return [(lo, min(lo + unit_size, total)) for lo in range(0, total, unit_size)]


def unit_size_for(total: int, *, cap: Optional[int] = None) -> int:
    """Deterministic work-unit size for ``total`` independent instances.

    Targets :data:`DEFAULT_UNITS` units, additionally honouring ``cap``
    (a memory ceiling such as the sampling engine's visited-buffer
    budget). Depends only on the inputs, never on the worker count.
    """
    if total <= 0:
        return 1
    size = -(-total // DEFAULT_UNITS)  # ceil division
    if cap is not None:
        size = min(size, max(int(cap), 1))
    return max(size, 1)


@dataclass
class WorkerContext:
    """What a unit function sees besides its task.

    ``arrays`` is the tuple of shared read-only ndarrays (the CSR triple
    in the sampling engine), ``payload`` an arbitrary picklable object
    delivered once per worker (the objective in GreeDi). In the serial
    fallback both are simply the caller's originals.
    """

    arrays: Optional[tuple[np.ndarray, ...]] = None
    payload: Any = None


class SharedArrays:
    """Export a tuple of ndarrays into named shared-memory segments.

    Use as a context manager in the parent::

        with SharedArrays(arrays) as shared:
            pool_map(fn, tasks, descriptor=shared.descriptor(), ...)

    Workers rebuild zero-copy views via :func:`attach_shared`. The parent
    owns the segments: ``__exit__`` closes and unlinks them.
    """

    def __init__(self, arrays: Sequence[np.ndarray]) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self._specs: list[tuple[str, str, tuple[int, ...]]] = []
        try:
            for array in arrays:
                array = np.ascontiguousarray(array)
                segment = shared_memory.SharedMemory(
                    create=True, size=max(array.nbytes, 1)
                )
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
                view[...] = array
                self._segments.append(segment)
                self._specs.append((segment.name, array.dtype.str, array.shape))
        except BaseException:
            self.close(unlink=True)
            raise

    def descriptor(self) -> list[tuple[str, str, tuple[int, ...]]]:
        """Picklable ``(name, dtype, shape)`` list for :func:`attach_shared`."""
        return list(self._specs)

    def close(self, *, unlink: bool = True) -> None:
        for segment in self._segments:
            try:
                segment.close()
                if unlink:
                    segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments = []
        self._specs = []

    def __enter__(self) -> "SharedArrays":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close(unlink=True)


#: Per-worker attachment state, populated by the pool initializer.
_WORKER_STATE: dict[str, Any] = {}


def attach_shared(
    descriptor: Sequence[tuple[str, str, tuple[int, ...]]],
) -> tuple[tuple[np.ndarray, ...], list[shared_memory.SharedMemory]]:
    """Attach to exported segments; returns (views, open segments).

    The segment handles must stay referenced as long as the views are in
    use — dropping them invalidates the buffers.
    """
    segments = []
    views = []
    for name, dtype, shape in descriptor:
        segment = shared_memory.SharedMemory(name=name)
        segments.append(segment)
        views.append(np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf))
    return tuple(views), segments


def _close_worker_segments() -> None:  # pragma: no cover - worker-side
    for segment in _WORKER_STATE.get("segments", ()):
        try:
            segment.close()
        except Exception:
            pass


def _init_worker(  # pragma: no cover - worker-side
    descriptor: Optional[Sequence[tuple[str, str, tuple[int, ...]]]],
    payload: Any,
) -> None:
    arrays: Optional[tuple[np.ndarray, ...]] = None
    segments: list[shared_memory.SharedMemory] = []
    if descriptor is not None:
        arrays, segments = attach_shared(descriptor)
    _WORKER_STATE["context"] = WorkerContext(arrays=arrays, payload=payload)
    _WORKER_STATE["segments"] = segments
    atexit.register(_close_worker_segments)


def _run_task(packed: tuple[WorkerFn, Any]) -> Any:  # pragma: no cover - worker-side
    fn, task = packed
    return fn(_WORKER_STATE["context"], task)


def parallel_map(
    fn: WorkerFn,
    tasks: Sequence[Any],
    *,
    workers: Optional[int] = None,
    shared: Optional[Sequence[np.ndarray]] = None,
    payload: Any = None,
) -> list[Any]:
    """Run ``fn(context, task)`` for every task, results in task order.

    ``fn`` must be a module-level function (pickled by reference).
    ``shared`` arrays travel through shared memory; ``payload`` is
    pickled once per worker via the pool initializer. Falls back to an
    in-process loop — same functions, same order, no pool — when the
    resolved worker count is 1, the task list has fewer than two tasks,
    or the platform lacks ``fork``.
    """
    tasks = list(tasks)
    count = pool_width(workers, len(tasks))
    if count <= 1:
        context = WorkerContext(
            arrays=tuple(shared) if shared is not None else None,
            payload=payload,
        )
        return [fn(context, task) for task in tasks]
    exported = SharedArrays(shared) if shared is not None else None
    descriptor = exported.descriptor() if exported is not None else None
    try:
        with ProcessPoolExecutor(
            max_workers=count,
            mp_context=mp.get_context("fork"),
            initializer=_init_worker,
            initargs=(descriptor, payload),
        ) as executor:
            return list(executor.map(_run_task, [(fn, t) for t in tasks]))
    finally:
        if exported is not None:
            exported.close(unlink=True)
