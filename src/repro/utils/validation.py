"""Argument-validation helpers with consistent error messages.

The public solvers validate their inputs eagerly (a greedy run on a large
Pokec-like graph takes minutes, so a bad ``tau`` must fail in microseconds,
not after the subroutines finish).
"""

from __future__ import annotations

from typing import Any


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        # numpy integer types are acceptable as well.
        try:
            import numpy as np

            if isinstance(value, np.integer):
                value = int(value)
            else:
                raise TypeError
        except TypeError:
            raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative(value: Any, name: str) -> float:
    """Validate that ``value`` is a non-negative real number."""
    value = float(value)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value


def check_fraction(value: Any, name: str, *, inclusive_low: bool = True,
                   inclusive_high: bool = True) -> float:
    """Validate that ``value`` lies in [0, 1] (bounds optionally open)."""
    value = float(value)
    low_ok = value >= 0 if inclusive_low else value > 0
    high_ok = value <= 1 if inclusive_high else value < 1
    if not (low_ok and high_ok):
        lo = "[" if inclusive_low else "("
        hi = "]" if inclusive_high else ")"
        raise ValueError(f"{name} must lie in {lo}0, 1{hi}, got {value}")
    return value


def check_probability(value: Any, name: str) -> float:
    """Alias of :func:`check_fraction` with closed bounds, for edge weights."""
    return check_fraction(value, name)
