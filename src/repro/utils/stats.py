"""Replication statistics for randomized solvers and estimators.

The paper reports single-run numbers; with synthetic substitutes for its
datasets, run-to-run variation matters more here, so the harness offers
seed-replication aggregates:

* :func:`aggregate` — mean / std / min / max over replicate values;
* :func:`bootstrap_ci` — percentile bootstrap confidence interval for
  any statistic (default: the mean) — distribution-free, appropriate
  for the skewed runtimes and spread estimates involved;
* :func:`paired_sign_test` — a quick nonparametric check that one
  algorithm beats another across seeds (used by EXPERIMENTS.md claims
  such as "BSM-Saturate dominates BSM-TSGreedy on f(S)").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class Aggregate:
    """Summary statistics of one metric over replicates."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"{self.mean:.4f} ± {self.std:.4f} "
            f"[{self.minimum:.4f}, {self.maximum:.4f}] (n={self.count})"
        )


def aggregate(values: Sequence[float]) -> Aggregate:
    """Mean/std/min/max of replicate values (std is the sample std).

    A single replicate yields ``std = 0`` rather than NaN so reports
    stay printable when an experiment is run once.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("need at least one value to aggregate")
    std = float(data.std(ddof=1)) if data.size > 1 else 0.0
    return Aggregate(
        count=int(data.size),
        mean=float(data.mean()),
        std=std,
        minimum=float(data.min()),
        maximum=float(data.max()),
    )


def bootstrap_ci(
    values: Sequence[float],
    *,
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: SeedLike = None,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for ``statistic``.

    Returns ``(low, high)``. With a single value the interval collapses
    to that value (nothing to resample).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    check_positive_int(resamples, "resamples")
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        raise ValueError("need at least one value for a bootstrap CI")
    if data.size == 1:
        only = float(data[0])
        return only, only
    rng = as_generator(seed)
    stats = np.empty(resamples, dtype=float)
    for b in range(resamples):
        sample = data[rng.integers(0, data.size, size=data.size)]
        stats[b] = float(statistic(sample))
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(stats, alpha)),
        float(np.quantile(stats, 1.0 - alpha)),
    )


def paired_sign_test(
    first: Sequence[float],
    second: Sequence[float],
    *,
    atol: float = 1e-12,
) -> float:
    """One-sided sign-test p-value for "first > second" across pairs.

    Ties (|difference| <= atol) are dropped, per the standard sign test.
    Small p supports the claim that ``first`` systematically exceeds
    ``second``. Exact binomial tail — no normal approximation — since
    replicate counts here are small (5-20 seeds).
    """
    a = np.asarray(list(first), dtype=float)
    b = np.asarray(list(second), dtype=float)
    if a.shape != b.shape:
        raise ValueError(
            f"paired samples must have equal length, got {a.size} vs {b.size}"
        )
    diffs = a - b
    informative = np.abs(diffs) > atol
    n = int(informative.sum())
    if n == 0:
        return 1.0
    wins = int((diffs[informative] > 0).sum())
    # P[X >= wins] for X ~ Binomial(n, 1/2).
    tail = sum(math.comb(n, j) for j in range(wins, n + 1)) / 2.0**n
    return float(tail)


def replicate(
    runner: Callable[[int], float],
    seeds: Sequence[int],
) -> list[float]:
    """Run ``runner(seed)`` for every seed and collect the metric values.

    Thin helper that keeps harness call-sites declarative::

        values = replicate(lambda s: solve(data, seed=s).utility, range(5))
    """
    if not seeds:
        raise ValueError("need at least one seed")
    return [float(runner(int(seed))) for seed in seeds]
