"""Shared low-level helpers used across the :mod:`repro` package.

The submodules deliberately stay dependency-free (numpy only) so that every
other subsystem — graphs, datasets, solvers — can import them without
creating cycles.
"""

from repro.utils.caching import (
    BoundedCache,
    CacheStats,
    estimate_nbytes,
    lru_bound,
)
from repro.utils.parallel import (
    SharedArrays,
    WorkerContext,
    WorkerPool,
    available_cpus,
    fork_available,
    get_pool,
    parallel_imap,
    parallel_map,
    pool_stats,
    resolve_backend,
    resolve_workers,
    shutdown_pools,
    spawn_seed_sequences,
)
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.stats import (
    Aggregate,
    aggregate,
    bootstrap_ci,
    paired_sign_test,
    replicate,
)
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive_int,
    check_probability,
)

__all__ = [
    "Aggregate",
    "BoundedCache",
    "CacheStats",
    "SharedArrays",
    "Timer",
    "WorkerContext",
    "WorkerPool",
    "aggregate",
    "as_generator",
    "available_cpus",
    "bootstrap_ci",
    "check_fraction",
    "check_non_negative",
    "check_positive_int",
    "check_probability",
    "estimate_nbytes",
    "fork_available",
    "get_pool",
    "lru_bound",
    "paired_sign_test",
    "parallel_imap",
    "parallel_map",
    "pool_stats",
    "replicate",
    "resolve_backend",
    "resolve_workers",
    "shutdown_pools",
    "spawn_generators",
    "spawn_seed_sequences",
]
