"""Random-number-generator plumbing.

Every stochastic component in the library (graph generators, the IC cascade
model, RIS sampling, stochastic greedy) accepts a ``seed`` argument that may
be ``None``, an integer, or an already-constructed :class:`numpy.random.Generator`.
Funnelling all of them through :func:`as_generator` keeps experiments
reproducible end to end: the benchmark harness passes a single integer seed
and every layer below derives its own independent stream from it.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    ``Generator`` instances are passed through unchanged so that callers can
    share a stream; anything else is fed to ``numpy.random.default_rng``.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seed_sequences(seed: SeedLike, count: int) -> list[np.random.SeedSequence]:
    """Derive ``count`` independent, picklable child seed sequences.

    ``SeedSequence.spawn`` siblings are statistically independent and
    safe to hand to concurrent processes (the parallel backend keys its
    per-work-unit streams on them). When ``seed`` is a live
    ``Generator``, exactly **one** draw is consumed from it — regardless
    of ``count`` — so the caller's stream advances identically whatever
    the fan-out width.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a fresh sequence from the generator's own stream.
        seq = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        seq = np.random.SeedSequence(seed)
    return seq.spawn(count)


def spawn_generators(seed: SeedLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``seed``.

    Used when a component fans work out (e.g. one stream per Monte-Carlo
    worker or per RIS batch) and must not correlate the streams. Thin
    wrapper over :func:`spawn_seed_sequences`.
    """
    return [
        np.random.default_rng(child) for child in spawn_seed_sequences(seed, count)
    ]


def sample_without_replacement(
    rng: np.random.Generator, population: int, size: int
) -> np.ndarray:
    """Sample ``size`` distinct indices from ``range(population)``.

    Thin wrapper that validates arguments and always returns an
    ``np.ndarray`` of dtype ``int64`` (``Generator.choice`` may return a
    scalar for ``size=1`` population edge cases).
    """
    if size > population:
        raise ValueError(
            f"cannot sample {size} items from a population of {population}"
        )
    out = rng.choice(population, size=size, replace=False)
    return np.asarray(out, dtype=np.int64).reshape(size)


def random_partition(
    rng: np.random.Generator, size: int, proportions: Sequence[float]
) -> np.ndarray:
    """Assign each of ``size`` elements to a class drawn from ``proportions``.

    Returns an int array of class labels in ``[0, len(proportions))``. The
    proportions are normalised, so callers may pass percentages. Used by the
    dataset generators to reproduce the paper's group mixes (Tables 1–2).
    """
    props = np.asarray(proportions, dtype=float)
    if props.ndim != 1 or props.size == 0:
        raise ValueError("proportions must be a non-empty 1-d sequence")
    if np.any(props < 0) or props.sum() <= 0:
        raise ValueError("proportions must be non-negative and sum to > 0")
    props = props / props.sum()
    labels = rng.choice(props.size, size=size, p=props)
    return np.asarray(labels, dtype=np.int64)


def deterministic_partition(size: int, proportions: Sequence[float]) -> np.ndarray:
    """Assign classes so group sizes match ``proportions`` as exactly as possible.

    Unlike :func:`random_partition` there is no sampling noise: group ``i``
    receives ``round(size * p_i)`` members (largest-remainder rounding), and
    every group with positive proportion receives at least one member when
    ``size >= number of groups``. The paper's dataset tables report exact
    percentages, so the default dataset builders use this variant.
    """
    props = np.asarray(proportions, dtype=float)
    if props.ndim != 1 or props.size == 0:
        raise ValueError("proportions must be a non-empty 1-d sequence")
    if np.any(props < 0) or props.sum() <= 0:
        raise ValueError("proportions must be non-negative and sum to > 0")
    props = props / props.sum()
    raw = props * size
    counts = np.floor(raw).astype(np.int64)
    # Guarantee non-empty groups first (the fairness objective divides by
    # group size, so empty groups are invalid downstream).
    if size >= props.size:
        counts = np.maximum(counts, np.where(props > 0, 1, 0))
    while counts.sum() > size:
        idx = int(np.argmax(counts - raw))
        counts[idx] -= 1
    remainders = raw - counts
    while counts.sum() < size:
        idx = int(np.argmax(remainders))
        counts[idx] += 1
        remainders[idx] = -np.inf
    labels = np.repeat(np.arange(props.size, dtype=np.int64), counts)
    return labels
