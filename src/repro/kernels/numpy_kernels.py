"""Tightened pure-NumPy kernels (the always-available fast set).

Same loops as :mod:`repro.kernels.baseline`, same draw law, bitwise the
same outputs — minus the allocation churn. The rewrite applies four
mechanical optimizations:

* **Preallocated per-thread scratch.** Every per-level temporary (draw
  buffer, gathered probabilities, live mask, compressed positions …)
  lives in a grow-only :class:`threading.local` arena reused across
  levels, chunks and calls, so the steady state allocates only the
  per-level result arrays that must survive. The dense visited buffer
  is reused too: after a chunk, exactly the touched keys are cleared
  (O(reached), not O(instances · n)).
* **``rng.random(out=)`` draws.** Filling a preallocated float64 buffer
  produces the identical stream to ``rng.random(size)`` — the bitwise
  contract holds with zero per-level draw allocations.
* **In-place sort + dedup instead of ``np.unique``.** The profile's
  single largest line: ``np.unique`` hashes and copies every level.
  Arrivals are compressed into scratch, sorted in place, and deduped
  with one ``!=`` shift-compare — the same sorted unique array.
* **Narrow dtypes + ``take``/``compress`` with ``out=``.** Flat keys
  fit int32 whenever ``num_instances * n`` does (always, for dense
  chunks capped by ``MAX_FLAT_KEYS``), halving the bytes moved by the
  sort and every gather. Probabilities stay float64 — comparing
  float32 would change draw outcomes. Inputs that don't fit the narrow
  path (huge key spaces, non-float64 probabilities) fall back to the
  baseline implementation, which is bitwise-identical by definition.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.kernels import baseline
from repro.utils.csr import merge_sorted_disjoint

Adjacency = tuple[np.ndarray, np.ndarray, np.ndarray]

_INT32_LIMIT = np.iinfo(np.int32).max

#: Largest probability array worth scanning for uniformity per chunk
#: call. Above this the O(arcs) scan could rival a level's work, so the
#: gathered path runs unconditionally.
_UNIFORM_SCAN_LIMIT = 1 << 25


def _uniform_probability(probs: np.ndarray) -> float | None:
    """``p`` when every arc carries probability ``p``, else ``None``.

    A uniform IC model (the repo's ``set_edge_probabilities`` default)
    makes the per-edge probability gather a broadcast: ``draws < p`` is
    bitwise identical to ``draws < probs[positions]``, so the chunk can
    skip its largest gather entirely. The scan runs per chunk call and
    costs O(arcs); first/last probes early-out the common non-uniform
    case.
    """
    if probs.size == 0 or probs.size > _UNIFORM_SCAN_LIMIT:
        return None
    p0 = probs[0]
    if probs[-1] != p0:
        return None
    return float(p0) if bool(np.all(probs == p0)) else None


class _Scratch:
    """Grow-only named buffers plus the reusable dense visited array."""

    def __init__(self) -> None:
        self._bufs: dict[str, np.ndarray] = {}
        self._visited = np.zeros(0, dtype=bool)
        self._visited_clean = True
        self._arange32 = np.empty(0, dtype=np.int32)
        self._arange64 = np.empty(0, dtype=np.int64)

    def buf(self, name: str, size: int, dtype) -> np.ndarray:
        key = f"{name}/{np.dtype(dtype).str}"
        buf = self._bufs.get(key)
        if buf is None or buf.size < size:
            capacity = max(size, 1024)
            if buf is not None:
                capacity = max(capacity, 2 * buf.size)
            buf = np.empty(capacity, dtype=dtype)
            self._bufs[key] = buf
        return buf[:size]

    def arange32(self, size: int) -> np.ndarray:
        if self._arange32.size < size:
            self._arange32 = np.arange(max(size, 1024), dtype=np.int32)
        return self._arange32[:size]

    def arange64(self, size: int) -> np.ndarray:
        if self._arange64.size < size:
            self._arange64 = np.arange(max(size, 1024), dtype=np.int64)
        return self._arange64[:size]

    def visited(self, size: int) -> np.ndarray:
        """An all-False bool buffer of at least ``size`` entries.

        Callers must clear every key they set before returning (the
        ``finally`` blocks below); ``_visited_clean`` guards against a
        previous call that died before its reset ran.
        """
        if self._visited.size < size:
            self._visited = np.zeros(
                max(size, 2 * self._visited.size), dtype=bool
            )
        elif not self._visited_clean:
            self._visited[:] = False
        self._visited_clean = True
        return self._visited


_LOCAL = threading.local()


def _scratch() -> _Scratch:
    scratch = getattr(_LOCAL, "scratch", None)
    if scratch is None:
        scratch = _LOCAL.scratch = _Scratch()
    return scratch


def _csr_level(
    scratch: _Scratch,
    indptr: np.ndarray,
    nodes: np.ndarray,
    idx_dtype,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Per-row slice offsets, lengths and cumulative lengths of a frontier.

    Returns ``(offsets, lengths, cums, total)`` where the flat CSR
    positions of the level are ``repeat(offsets, lengths) +
    arange(total)`` and ``cums`` is the running edge count per row (the
    owner-lookup table for live edges) — the scratch-buffered half of
    :func:`repro.utils.csr.gather_csr_slices`.
    """
    size = nodes.size
    starts = scratch.buf("lvl.starts", size, np.int64)
    np.take(indptr, nodes, out=starts)
    bounds = scratch.buf("lvl.bounds", size, nodes.dtype)
    np.add(nodes, 1, out=bounds)
    ends = scratch.buf("lvl.ends", size, np.int64)
    np.take(indptr, bounds, out=ends)
    lengths = scratch.buf("lvl.lengths", size, np.int64)
    np.subtract(ends, starts, out=lengths)
    cums = scratch.buf("lvl.cums", size, np.int64)
    np.cumsum(lengths, out=cums)
    total = int(cums[-1]) if size else 0
    # offsets = starts - (cums - lengths), folded in place into starts.
    np.add(starts, lengths, out=starts)
    np.subtract(starts, cums, out=starts)
    if np.dtype(idx_dtype) == np.int64:
        return starts, lengths, cums, total
    offsets = scratch.buf("lvl.offs32", size, np.int32)
    offsets[...] = starts
    return offsets, lengths, cums, total


def reachability_chunk(
    adjacency: Adjacency,
    start_keys: np.ndarray,
    num_instances: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Allocation-lean twin of :func:`baseline.reachability_chunk`."""
    indptr, indices, probs = adjacency
    n = indptr.size - 1
    total_keys = num_instances * n
    if (
        total_keys > _INT32_LIMIT
        or indices.size > _INT32_LIMIT
        or probs.dtype != np.float64
    ):
        return baseline.reachability_chunk(
            adjacency, start_keys, num_instances, rng
        )
    start = np.unique(np.asarray(start_keys, dtype=np.int64))
    if start.size == 0:
        return np.zeros(0, dtype=np.int64)
    scratch = _scratch()
    indices32 = np.asarray(indices, dtype=np.int32)
    uniform_p = _uniform_probability(probs)
    visited = scratch.visited(total_keys)
    scratch._visited_clean = False
    reached: list[np.ndarray] = [start.astype(np.int32)]
    frontier = reached[0]
    try:
        visited[frontier] = True
        while frontier.size:
            size = frontier.size
            nodes = scratch.buf("rc.nodes", size, np.int32)
            np.remainder(frontier, n, out=nodes)
            bases = scratch.buf("rc.bases", size, np.int32)
            np.subtract(frontier, nodes, out=bases)
            offsets, lengths, cums, total = _csr_level(
                scratch, indptr, nodes, np.int32
            )
            if total == 0:
                break
            if total > _INT32_LIMIT:  # pragma: no cover - pathological level
                frontier = _expand_level_wide(
                    adjacency, frontier, n, visited, rng
                )
                if frontier.size == 0:
                    break
                reached.append(frontier)
                continue
            positions = np.repeat(offsets, lengths)
            np.add(positions, scratch.arange32(total), out=positions)
            draws = scratch.buf("rc.draws", total, np.float64)
            rng.random(out=draws)
            live = scratch.buf("rc.live", total, bool)
            if uniform_p is None:
                gathered = scratch.buf("rc.probs", total, np.float64)
                np.take(probs, positions, out=gathered)
                np.less(draws, gathered, out=live)
            else:
                # Every arc carries the same probability, so the gather
                # is a broadcast: draws < p is bitwise the gathered
                # comparison.
                np.less(draws, uniform_p, out=live)
            edges = np.flatnonzero(live)
            hits = edges.size
            if hits == 0:
                break
            live_pos = scratch.buf("rc.livepos", hits, np.int32)
            np.take(positions, edges, out=live_pos)
            # Each live edge's owning frontier row — found by bisecting
            # the cumulative lengths instead of materialising (and then
            # compressing) a repeated per-edge base array.
            owners = np.searchsorted(
                cums[:size], edges, side="right"
            )
            keys = scratch.buf("rc.keys", hits, np.int32)
            np.take(bases, owners, out=keys)
            arrivals = scratch.buf("rc.arrivals", hits, np.int32)
            np.take(indices32, live_pos, out=arrivals)
            np.add(keys, arrivals, out=keys)
            seen = scratch.buf("rc.seen", hits, bool)
            np.take(visited, keys, out=seen)
            np.logical_not(seen, out=seen)
            fresh_count = int(np.count_nonzero(seen))
            if fresh_count == 0:
                break
            fresh = scratch.buf("rc.fresh", fresh_count, np.int32)
            np.compress(seen, keys, out=fresh)
            fresh.sort()
            flags = scratch.buf("rc.flags", fresh_count, bool)
            flags[0] = True
            np.not_equal(fresh[1:], fresh[:-1], out=flags[1:])
            unique = np.empty(int(np.count_nonzero(flags)), dtype=np.int32)
            np.compress(flags, fresh, out=unique)
            reached.append(unique)
            visited[unique] = True
            frontier = unique
    finally:
        for part in reached:
            visited[part] = False
        scratch._visited_clean = True
    return np.concatenate(reached).astype(np.int64)


def _expand_level_wide(
    adjacency: Adjacency,
    frontier: np.ndarray,
    n: int,
    visited: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:  # pragma: no cover - levels beyond int32 positions
    """Baseline-style int64 expansion of one oversized level.

    The draw law is per level, so mixing one wide level into the narrow
    loop keeps the stream — and therefore the result — bitwise intact.
    """
    from repro.utils.csr import gather_csr_slices

    indptr, indices, probs = adjacency
    wide = frontier.astype(np.int64)
    positions, owners = gather_csr_slices(indptr, wide % n)
    live = rng.random(positions.size) < probs[positions]
    keys = (wide // n)[owners[live]] * n + indices[positions[live]]
    keys = keys[~visited[keys]]
    if keys.size == 0:
        return np.zeros(0, dtype=np.int32)
    keys = np.unique(keys)
    visited[keys] = True
    return keys.astype(np.int32)


def reachability_chunk_sparse(
    adjacency: Adjacency,
    start_keys: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Allocation-lean twin of :func:`baseline.reachability_chunk_sparse`.

    Keys stay int64 (the sparse chunk serves unbounded key spaces); the
    wins here are the buffered draws, the fused base arithmetic and the
    sort+dedup replacing ``np.unique``. Membership stays the baseline's
    sorted-array ``searchsorted`` probes — they are already vector-bound.
    """
    indptr, indices, probs = adjacency
    n = indptr.size - 1
    if probs.dtype != np.float64:
        return baseline.reachability_chunk_sparse(adjacency, start_keys, rng)
    start = np.unique(np.asarray(start_keys, dtype=np.int64))
    if start.size == 0:
        return np.zeros(0, dtype=np.int64)
    scratch = _scratch()
    uniform_p = _uniform_probability(probs)
    reached: list[np.ndarray] = [start]
    base = start
    pending: list[np.ndarray] = []
    frontier = start
    while frontier.size:
        size = frontier.size
        nodes = scratch.buf("rs.nodes", size, np.int64)
        np.remainder(frontier, n, out=nodes)
        bases = scratch.buf("rs.bases", size, np.int64)
        np.subtract(frontier, nodes, out=bases)
        offsets, lengths, cums, total = _csr_level(
            scratch, indptr, nodes, np.int64
        )
        if total == 0:
            break
        positions = np.repeat(offsets, lengths)
        np.add(positions, scratch.arange64(total), out=positions)
        draws = scratch.buf("rs.draws", total, np.float64)
        rng.random(out=draws)
        live = scratch.buf("rs.live", total, bool)
        if uniform_p is None:
            gathered = scratch.buf("rs.probs", total, np.float64)
            np.take(probs, positions, out=gathered)
            np.less(draws, gathered, out=live)
        else:
            np.less(draws, uniform_p, out=live)
        edges = np.flatnonzero(live)
        hits = edges.size
        if hits == 0:
            break
        live_pos = scratch.buf("rs.livepos", hits, np.int64)
        np.take(positions, edges, out=live_pos)
        owners = np.searchsorted(cums[:size], edges, side="right")
        keys = scratch.buf("rs.keys", hits, np.int64)
        np.take(bases, owners, out=keys)
        arrivals = scratch.buf("rs.arrivals", hits, np.int64)
        np.take(indices, live_pos, out=arrivals)
        np.add(keys, arrivals, out=keys)
        seen = baseline.member_sorted(base, keys)
        for level in pending:
            seen |= baseline.member_sorted(level, keys)
        np.logical_not(seen, out=seen)
        fresh_count = int(np.count_nonzero(seen))
        if fresh_count == 0:
            break
        fresh = scratch.buf("rs.fresh", fresh_count, np.int64)
        np.compress(seen, keys, out=fresh)
        fresh.sort()
        flags = scratch.buf("rs.flags", fresh_count, bool)
        flags[0] = True
        np.not_equal(fresh[1:], fresh[:-1], out=flags[1:])
        unique = np.empty(int(np.count_nonzero(flags)), dtype=np.int64)
        np.compress(flags, fresh, out=unique)
        reached.append(unique)
        pending.append(unique)
        frontier = unique
        if len(pending) >= baseline.SPARSE_MERGE_EVERY:
            merged = pending[0]
            for level in pending[1:]:
                merged = merge_sorted_disjoint(merged, level)
            base = merge_sorted_disjoint(base, merged)
            pending = []
    return np.concatenate(reached) if len(reached) > 1 else reached[0]


def pack_chunk_keys(
    keys: np.ndarray, num_instances: int, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Narrow-dtype twin of :func:`baseline.pack_chunk_keys`.

    When the chunk's flat key space fits int32 (always, under the
    engine's ``MAX_FLAT_KEYS`` chunk law), the divmod and the stable
    argsort run narrow — the permutation and the int64 outputs are
    identical, the sort moves half the bytes.
    """
    if num_instances * n > _INT32_LIMIT or keys.dtype != np.int64:
        return baseline.pack_chunk_keys(keys, num_instances, n)
    keys = keys.astype(np.int32)
    sample_ids = keys // np.int32(n)
    nodes = keys - sample_ids * np.int32(n)
    order = np.argsort(sample_ids, kind="stable")
    counts = np.bincount(sample_ids, minlength=num_instances)
    set_indptr = np.zeros(num_instances + 1, dtype=np.int64)
    np.cumsum(counts, out=set_indptr[1:])
    return set_indptr, nodes[order].astype(np.int64, copy=False)


def group_counts(
    indptr: np.ndarray,
    indices: np.ndarray,
    items: np.ndarray,
    already_counted: np.ndarray,
    labels: np.ndarray,
    num_groups: int,
) -> np.ndarray:
    """Scratch-buffered twin of :func:`repro.utils.csr.batch_group_counts`."""
    scratch = _scratch()
    items = np.asarray(items, dtype=np.int64)
    offsets, lengths, _, total = _csr_level(scratch, indptr, items, np.int64)
    if total == 0:
        return np.zeros((items.size, num_groups), dtype=np.int64)
    positions = np.repeat(offsets, lengths)
    np.add(positions, scratch.arange64(total), out=positions)
    entries = scratch.buf("gc.entries", total, np.int64)
    np.take(indices, positions, out=entries)
    row_rep = np.repeat(scratch.arange64(items.size), lengths)
    fresh = scratch.buf("gc.fresh", total, bool)
    np.take(already_counted, entries, out=fresh)
    np.logical_not(fresh, out=fresh)
    hits = int(np.count_nonzero(fresh))
    if hits == 0:
        return np.zeros((items.size, num_groups), dtype=np.int64)
    fresh_entries = scratch.buf("gc.fe", hits, np.int64)
    np.compress(fresh, entries, out=fresh_entries)
    bins = scratch.buf("gc.bins", hits, np.int64)
    np.compress(fresh, row_rep, out=bins)
    np.multiply(bins, num_groups, out=bins)
    entry_labels = scratch.buf("gc.labels", hits, np.int64)
    np.take(labels, fresh_entries, out=entry_labels)
    np.add(bins, entry_labels, out=bins)
    return np.bincount(bins, minlength=items.size * num_groups).reshape(
        items.size, num_groups
    )


def gains_rescore(
    ids: np.ndarray,
    covered: np.ndarray,
    labels: np.ndarray,
    num_groups: int,
) -> np.ndarray:
    """Scratch-buffered twin of :func:`baseline.gains_rescore`."""
    if ids.size == 0:
        return np.zeros(num_groups, dtype=np.int64)
    scratch = _scratch()
    fresh = scratch.buf("gr.fresh", ids.size, bool)
    np.take(covered, ids, out=fresh)
    np.logical_not(fresh, out=fresh)
    hits = int(np.count_nonzero(fresh))
    if hits == 0:
        return np.zeros(num_groups, dtype=np.int64)
    fresh_ids = scratch.buf("gr.ids", hits, np.int64)
    np.compress(fresh, ids, out=fresh_ids)
    fresh_labels = scratch.buf("gr.labels", hits, np.int64)
    np.take(labels, fresh_ids, out=fresh_labels)
    return np.bincount(fresh_labels, minlength=num_groups)
