"""The PR 3 reference kernels, verbatim.

These are the original hot-loop implementations that every other kernel
set is bitwise-verified against (``tests/test_kernels.py``) and that the
``kernel_serial`` benchmark metric measures speedups over. They moved
here from :mod:`repro.influence.engine` and
:mod:`repro.utils.csr` unchanged — the engine now dispatches through
:func:`repro.kernels.get_kernel` — so "baseline" stays callable no
matter how the optimized sets evolve.
"""

from __future__ import annotations

import numpy as np

from repro.utils.csr import (
    batch_group_counts,
    gather_csr_slices,
    merge_sorted_disjoint,
)

Adjacency = tuple[np.ndarray, np.ndarray, np.ndarray]

#: How many sorted per-level key arrays the sparse reachability chunk
#: accumulates before merging them into its base visited array. Bounds
#: the per-arrival membership probes (one ``searchsorted`` per pending
#: level) while amortizing the O(reached) merge over many levels.
SPARSE_MERGE_EVERY = 16


def reachability_chunk(
    adjacency: Adjacency,
    start_keys: np.ndarray,
    num_instances: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """All ``instance * n + node`` keys reachable from ``start_keys``.

    One level-synchronous BFS over every instance at once. Every frontier
    edge draws its coin from a single ``rng.random`` call per level (the
    scalar BFS draws per frontier *node*; per level is the batched
    equivalent — the marginal law of each edge coin is identical).
    """
    indptr, indices, probs = adjacency
    n = indptr.size - 1
    visited = np.zeros(num_instances * n, dtype=bool)
    start_keys = np.unique(start_keys)
    visited[start_keys] = True
    reached = [start_keys]
    frontier = start_keys
    while frontier.size:
        positions, owners = gather_csr_slices(indptr, frontier % n)
        if positions.size == 0:
            break
        live = rng.random(positions.size) < probs[positions]
        keys = (frontier // n)[owners[live]] * n + indices[positions[live]]
        keys = keys[~visited[keys]]
        if keys.size == 0:
            break
        # np.unique both dedups same-level arrivals and sorts the new
        # frontier by (instance, node), keeping expansion order canonical.
        keys = np.unique(keys)
        visited[keys] = True
        reached.append(keys)
        frontier = keys
    return np.concatenate(reached) if len(reached) > 1 else reached[0]


def member_sorted(table: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Boolean membership of ``keys`` in the sorted array ``table``."""
    if table.size == 0:
        return np.zeros(keys.size, dtype=bool)
    idx = np.searchsorted(table, keys)
    valid = idx < table.size
    out = np.zeros(keys.size, dtype=bool)
    out[valid] = table[idx[valid]] == keys[valid]
    return out


def reachability_chunk_sparse(
    adjacency: Adjacency,
    start_keys: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """:func:`reachability_chunk` without the dense visited buffer.

    The dense chunk allocates ``num_instances * n`` bools, which caps the
    instances per chunk at ``max_keys // n`` — at a million nodes that is
    a few dozen instances and the per-level Python overhead dominates.
    This variant tracks visited keys as sorted arrays (a merged base plus
    up to :data:`SPARSE_MERGE_EVERY` pending level arrays, probed with
    ``searchsorted``), so memory is O(reached keys) and the instance
    count per chunk is free. The frontier sequence — and therefore every
    ``rng`` draw — is bit-for-bit identical to the dense chunk on the
    same inputs: both filter arrivals against exactly the keys reached on
    earlier levels before the ``np.unique`` dedup.
    """
    indptr, indices, probs = adjacency
    n = indptr.size - 1
    start_keys = np.unique(start_keys)
    reached = [start_keys]
    base = start_keys
    pending: list[np.ndarray] = []
    frontier = start_keys
    while frontier.size:
        positions, owners = gather_csr_slices(indptr, frontier % n)
        if positions.size == 0:
            break
        live = rng.random(positions.size) < probs[positions]
        keys = (frontier // n)[owners[live]] * n + indices[positions[live]]
        if keys.size == 0:
            break
        seen = member_sorted(base, keys)
        for level in pending:
            seen |= member_sorted(level, keys)
        keys = keys[~seen]
        if keys.size == 0:
            break
        keys = np.unique(keys)
        reached.append(keys)
        pending.append(keys)
        frontier = keys
        if len(pending) >= SPARSE_MERGE_EVERY:
            merged = pending[0]
            for level in pending[1:]:
                merged = merge_sorted_disjoint(merged, level)
            base = merge_sorted_disjoint(base, merged)
            pending = []
    return np.concatenate(reached) if len(reached) > 1 else reached[0]


#: CSR coverage counting — the reference *is* the shared helper in
#: :mod:`repro.utils.csr` (one flat gather + one bincount pass).
group_counts = batch_group_counts


def pack_chunk_keys(
    keys: np.ndarray, num_instances: int, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Pack one chunk's reached keys into ``(set_indptr, set_indices)``.

    The PR 3 pack: int64 divmod plus a stable argsort on the instance
    ids, so each set's members land in ascending node order within
    their slice.
    """
    sample_ids, nodes = keys // n, keys % n
    order = np.argsort(sample_ids, kind="stable")
    counts = np.bincount(sample_ids, minlength=num_instances)
    set_indptr = np.zeros(num_instances + 1, dtype=np.int64)
    np.cumsum(counts, out=set_indptr[1:])
    return set_indptr, nodes[order]


def gains_rescore(
    ids: np.ndarray,
    covered: np.ndarray,
    labels: np.ndarray,
    num_groups: int,
) -> np.ndarray:
    """Per-group count of fresh (uncovered) RR sets among ``ids``.

    The CELF single-item re-score: ``ids`` are the RR-set ids containing
    the candidate, ``covered`` the current solution's hit flags,
    ``labels`` every set's root group. Returns int64 counts of shape
    ``(num_groups,)`` — the numerator of the gain vector.
    """
    fresh = ids[~covered[ids]]
    return np.bincount(labels[fresh], minlength=num_groups)
