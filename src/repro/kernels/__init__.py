"""Registry of interchangeable hot-loop kernels.

The influence stack has exactly three inner loops that dominate every
figure: the per-level gather+draw of the batched reachability BFS
(:mod:`repro.influence.engine`), CSR coverage counting
(:func:`repro.utils.csr.batch_group_counts` and the bincount paths in
:mod:`repro.problems.influence`), and the CELF single-item gains
re-score. This package holds one implementation *set* per strategy and
dispatches each call to the best available one:

* ``"baseline"`` — the PR 3 reference implementations, moved here
  verbatim from ``engine.py``/``csr.py``. Kept callable forever: it is
  the ground truth every other kernel is bitwise-checked against, and
  the denominator of the ``kernel_serial`` benchmark metric.
* ``"numpy"`` — a tightened pure-NumPy rewrite: preallocated per-thread
  scratch reused across levels and chunks, ``rng.random(out=)`` draws,
  in-place sort+dedup instead of ``np.unique``, ``np.take``/
  ``np.compress`` with ``out=`` in place of fancy-index temporaries,
  and int32 key arithmetic whenever the flat key space fits. Always
  available; must win ≥1.3x over baseline on one core
  (``benchmarks/bench_parallel.py`` gates it).
* ``"numba"`` — optional nogil compiled loops, registered only when
  :mod:`numba` imports. Draws stay in NumPy (``rng.random`` into a
  buffer — the identical float64 stream), so the compiled part is
  purely deterministic and the bitwise contract survives compilation.

Every kernel produces bit-for-bit the baseline's arrays for the same
inputs and RNG state — the registry changes speed, never results. The
active set resolves as ``REPRO_KERNEL`` env override → ``"numba"`` when
importable → ``"numpy"``; :func:`set_default_kernel` pins it
programmatically (tests) and per-call ``kernel=`` arguments through the
engine entry points override per use.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "Kernel",
    "available_kernels",
    "default_kernel_name",
    "get_kernel",
    "register_kernel",
    "set_default_kernel",
]

#: Environment override for the active kernel set (e.g. the CI
#: optional-deps leg exports ``REPRO_KERNEL=numba`` to pin the compiled
#: path instead of trusting import luck).
KERNEL_ENV_VAR = "REPRO_KERNEL"


@dataclass(frozen=True)
class Kernel:
    """One named implementation set of the three hot loops.

    ``reachability_chunk``/``reachability_chunk_sparse`` mirror the
    engine's private chunk functions (flat ``instance * n + node`` keys
    in, reached keys out, one ``rng.random`` consumption per BFS level);
    ``group_counts`` mirrors :func:`repro.utils.csr.batch_group_counts`;
    ``gains_rescore`` is the CELF single-item fresh-coverage count
    (``ids`` of RR sets containing the item → per-group int64 counts);
    ``pack_chunk_keys`` turns one chunk's reached flat keys into the
    packed ``(set_indptr, set_indices)`` pair.
    """

    name: str
    reachability_chunk: Callable
    reachability_chunk_sparse: Callable
    group_counts: Callable
    gains_rescore: Callable
    pack_chunk_keys: Callable


_REGISTRY: dict[str, Kernel] = {}
_DEFAULT_OVERRIDE: Optional[str] = None


def register_kernel(kernel: Kernel) -> None:
    """Add (or replace) a kernel set in the registry."""
    _REGISTRY[kernel.name] = kernel


def available_kernels() -> list[str]:
    """Registered kernel names, baseline first."""
    names = sorted(_REGISTRY)
    if "baseline" in names:
        names.remove("baseline")
        names.insert(0, "baseline")
    return names


def default_kernel_name() -> str:
    """The kernel used when no explicit name is given.

    Resolution order: :func:`set_default_kernel` pin → ``REPRO_KERNEL``
    environment variable → ``"numba"`` when the compiled set registered
    → ``"numpy"``.
    """
    if _DEFAULT_OVERRIDE is not None:
        return _DEFAULT_OVERRIDE
    env = os.environ.get(KERNEL_ENV_VAR)
    if env:
        if env not in _REGISTRY:
            raise ValueError(
                f"{KERNEL_ENV_VAR}={env!r} is not a registered kernel "
                f"(available: {available_kernels()})"
            )
        return env
    if "numba" in _REGISTRY:
        return "numba"
    return "numpy"


def set_default_kernel(name: Optional[str]) -> None:
    """Pin the default kernel set (``None`` restores auto-resolution)."""
    if name is not None and name not in _REGISTRY:
        raise ValueError(
            f"unknown kernel {name!r} (available: {available_kernels()})"
        )
    global _DEFAULT_OVERRIDE
    _DEFAULT_OVERRIDE = name


def get_kernel(name: Optional[str] = None) -> Kernel:
    """Resolve a kernel set by name (``None`` → the active default)."""
    resolved = name if name is not None else default_kernel_name()
    try:
        return _REGISTRY[resolved]
    except KeyError:
        raise ValueError(
            f"unknown kernel {resolved!r} (available: {available_kernels()})"
        ) from None


# Register the always-available sets eagerly; the compiled set only if
# its dependency imports (a missing numba is the expected common case).
from repro.kernels import baseline as _baseline  # noqa: E402
from repro.kernels import numpy_kernels as _numpy_kernels  # noqa: E402

register_kernel(
    Kernel(
        name="baseline",
        reachability_chunk=_baseline.reachability_chunk,
        reachability_chunk_sparse=_baseline.reachability_chunk_sparse,
        group_counts=_baseline.group_counts,
        gains_rescore=_baseline.gains_rescore,
        pack_chunk_keys=_baseline.pack_chunk_keys,
    )
)
register_kernel(
    Kernel(
        name="numpy",
        reachability_chunk=_numpy_kernels.reachability_chunk,
        reachability_chunk_sparse=_numpy_kernels.reachability_chunk_sparse,
        group_counts=_numpy_kernels.group_counts,
        gains_rescore=_numpy_kernels.gains_rescore,
        pack_chunk_keys=_numpy_kernels.pack_chunk_keys,
    )
)

from repro.kernels import numba_kernels as _numba_kernels  # noqa: E402

if _numba_kernels.NUMBA_AVAILABLE:  # pragma: no cover - CI numba leg
    register_kernel(
        Kernel(
            name="numba",
            reachability_chunk=_numba_kernels.reachability_chunk,
            # The sparse chunk's searchsorted probes are already
            # vector-bound; the tightened NumPy variant serves both sets.
            reachability_chunk_sparse=_numpy_kernels.reachability_chunk_sparse,
            group_counts=_numba_kernels.group_counts,
            gains_rescore=_numba_kernels.gains_rescore,
            pack_chunk_keys=_numpy_kernels.pack_chunk_keys,
        )
    )
