"""Optional numba-compiled kernels (registered only when numba imports).

The compiled set keeps the randomness in NumPy: every BFS level draws
its coins with one ``rng.random(out=buffer)`` call — the identical
float64 stream the baseline consumes — and only the *deterministic*
fused step (gather → compare → visited-filter → dedup-mark) runs inside
an ``@njit(nogil=True)`` loop. Two consequences:

* Bitwise identity is structural, not numerical luck: the compiled loop
  walks edges in exactly the baseline's frontier-by-frontier CSR order,
  consuming ``draws[t]`` in the same order the baseline's vectorized
  ``rng.random(E) < probs[positions]`` assigns them, and first-marking
  duplicates within a level is set-equal to filter-then-``np.unique``
  (both keep an arrival iff it is live and unvisited at level entry; a
  final sort restores the canonical order).
* ``nogil=True`` means the thread backend of
  :mod:`repro.utils.parallel` gets real multicore scaling out of these
  loops — threads share the CSR arrays zero-copy and release the GIL
  for the duration of every level.

The sparse reachability variant stays on the tightened NumPy kernel
(its ``searchsorted`` probes are already vector-bound); the registry
composes the set accordingly.
"""

from __future__ import annotations

import numpy as np

try:
    from numba import njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised where numba is absent
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):
        # The module stays importable without numba (docs/packaging
        # walk every submodule); the registry checks NUMBA_AVAILABLE
        # and never registers — or calls — these undecorated loops.
        def decorate(fn):
            return fn

        return decorate

Adjacency = tuple[np.ndarray, np.ndarray, np.ndarray]


@njit(cache=True, nogil=True)
def _expand_level(
    nodes, bases, indptr, indices, probs, draws, visited, out_keys
):  # pragma: no cover - compiled, exercised via the CI numba leg
    count = 0
    t = 0
    for i in range(nodes.size):
        base = bases[i]
        node = nodes[i]
        for e in range(indptr[node], indptr[node + 1]):
            if draws[t] < probs[e]:
                key = base + indices[e]
                if not visited[key]:
                    visited[key] = True
                    out_keys[count] = key
                    count += 1
            t += 1
    return count


@njit(cache=True, nogil=True)
def _group_counts_rows(
    indptr, indices, items, covered, labels, out
):  # pragma: no cover - compiled, exercised via the CI numba leg
    for r in range(items.size):
        item = items[r]
        for e in range(indptr[item], indptr[item + 1]):
            entry = indices[e]
            if not covered[entry]:
                out[r, labels[entry]] += 1


@njit(cache=True, nogil=True)
def _gains_counts(
    ids, covered, labels, out
):  # pragma: no cover - compiled, exercised via the CI numba leg
    for i in range(ids.size):
        set_id = ids[i]
        if not covered[set_id]:
            out[labels[set_id]] += 1


def _plain(array: np.ndarray) -> np.ndarray:
    """A base-class ndarray view (numba rejects memmap subclasses)."""
    if type(array) is np.ndarray:
        return array
    return np.asarray(array)


def reachability_chunk(
    adjacency: Adjacency,
    start_keys: np.ndarray,
    num_instances: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Compiled twin of :func:`repro.kernels.baseline.reachability_chunk`."""
    indptr = _plain(adjacency[0])
    indices = _plain(np.asarray(adjacency[1], dtype=np.int64))
    probs = _plain(np.asarray(adjacency[2], dtype=np.float64))
    n = indptr.size - 1
    visited = np.zeros(num_instances * n, dtype=np.bool_)
    start = np.unique(np.asarray(start_keys, dtype=np.int64))
    if start.size == 0:
        return np.zeros(0, dtype=np.int64)
    visited[start] = True
    reached = [start]
    frontier = start
    draws = np.empty(0, dtype=np.float64)
    out_keys = np.empty(0, dtype=np.int64)
    while frontier.size:
        nodes = frontier % n
        bases = frontier - nodes
        total = int((indptr[nodes + 1] - indptr[nodes]).sum())
        if total == 0:
            break
        if draws.size < total:
            draws = np.empty(max(total, 2 * draws.size), dtype=np.float64)
            out_keys = np.empty(draws.size, dtype=np.int64)
        rng.random(out=draws[:total])
        count = _expand_level(
            nodes, bases, indptr, indices, probs,
            draws[:total], visited, out_keys,
        )
        if count == 0:
            break
        keys = out_keys[:count].copy()
        keys.sort()
        reached.append(keys)
        frontier = keys
    return np.concatenate(reached) if len(reached) > 1 else reached[0]


def group_counts(
    indptr: np.ndarray,
    indices: np.ndarray,
    items: np.ndarray,
    already_counted: np.ndarray,
    labels: np.ndarray,
    num_groups: int,
) -> np.ndarray:
    """Compiled twin of :func:`repro.utils.csr.batch_group_counts`."""
    items = np.asarray(items, dtype=np.int64)
    out = np.zeros((items.size, num_groups), dtype=np.int64)
    if items.size:
        _group_counts_rows(
            _plain(indptr), _plain(indices), items,
            _plain(already_counted), _plain(labels), out,
        )
    return out


def gains_rescore(
    ids: np.ndarray,
    covered: np.ndarray,
    labels: np.ndarray,
    num_groups: int,
) -> np.ndarray:
    """Compiled twin of :func:`repro.kernels.baseline.gains_rescore`."""
    out = np.zeros(num_groups, dtype=np.int64)
    if ids.size:
        _gains_counts(
            np.ascontiguousarray(ids), _plain(covered), _plain(labels), out
        )
    return out
