"""Array backends: the ``ram`` | ``mmap`` split behind every CSR consumer.

An :class:`ArrayBackend` answers one question — *where does a finished
numpy array live?* — with two implementations:

* :class:`RamBackend` keeps the array as-is (the historical behaviour);
* :class:`MmapBackend` writes the bytes to a scratch file and hands back
  a read-only ``np.memmap`` view, so the data costs file-system pages
  (reclaimable, resident-zero for budget accounting) instead of heap.

Consumers never branch on the kind: they call :meth:`ArrayBackend.store`
on arrays they want to keep, :func:`release_array` on arrays they are
done scanning for now, and :func:`resident_nbytes` when accounting.
The scratch directory of an :class:`MmapBackend` is private to the
backend instance and removed when it is closed or garbage-collected.
"""

from __future__ import annotations

import abc
import mmap
import os
import shutil
import tempfile
import weakref
from typing import Optional

import numpy as np

from repro.errors import StorageError

__all__ = [
    "ArrayBackend",
    "MmapBackend",
    "RamBackend",
    "release_array",
    "resident_nbytes",
    "resolve_backend",
]

#: Backend kinds accepted by :func:`resolve_backend` and the CLI/service
#: ``--store`` flag.
STORE_KINDS = ("ram", "mmap")


def resident_nbytes(array: Optional[np.ndarray]) -> int:
    """Heap bytes ``array`` pins: 0 for memmap-backed arrays and views."""
    if array is None:
        return 0
    if isinstance(array, np.memmap):
        return 0
    if array.base is not None and isinstance(array.base, np.memmap):
        return 0
    return int(array.nbytes)


def release_array(array: Optional[np.ndarray]) -> None:
    """Advise the kernel to drop ``array``'s resident pages (memmap only).

    A no-op for plain arrays: heap memory cannot be dropped without
    losing the data. For ``np.memmap`` arrays this issues
    ``MADV_DONTNEED`` on the underlying mapping, returning the pages to
    the kernel — the data stays intact on disk and refaults on the next
    access. This is what keeps segment-by-segment scans bounded: each
    segment is released as soon as its pass completes.
    """
    if array is None or not isinstance(array, np.memmap):
        return
    raw = getattr(array, "_mmap", None)
    if raw is None:
        return
    try:
        raw.madvise(mmap.MADV_DONTNEED)
    except (AttributeError, OSError, ValueError):  # pragma: no cover
        pass  # platform without madvise: correctness is unaffected


class ArrayBackend(abc.ABC):
    """Placement policy for finished CSR arrays."""

    kind: str = ""

    @abc.abstractmethod
    def store(self, name: str, array: np.ndarray) -> np.ndarray:
        """Persist ``array`` under ``name`` and return the canonical view.

        The returned array is read-only for the ``mmap`` backend; callers
        must treat it as immutable under either backend. Re-storing an
        existing ``name`` replaces the previous contents.
        """

    @abc.abstractmethod
    def delete(self, name: str) -> None:
        """Forget (and unlink, for ``mmap``) the array stored as ``name``."""

    def close(self) -> None:
        """Release backend-owned resources (scratch directory)."""

    def __enter__(self) -> "ArrayBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RamBackend(ArrayBackend):
    """Keep arrays on the heap — the flat, historical placement."""

    kind = "ram"

    def store(self, name: str, array: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(array)

    def delete(self, name: str) -> None:
        pass


class MmapBackend(ArrayBackend):
    """Write arrays to scratch files; hand back read-only memmap views."""

    kind = "mmap"

    def __init__(self, directory: Optional[str] = None) -> None:
        if directory is None:
            directory = tempfile.mkdtemp(prefix="repro-oocore-")
            self._owns_directory = True
        else:
            os.makedirs(directory, exist_ok=True)
            self._owns_directory = False
        self.directory = directory
        self._paths: dict[str, str] = {}
        self._revision = 0
        self._finalizer = weakref.finalize(
            self, MmapBackend._cleanup, directory, self._owns_directory
        )

    @staticmethod
    def _cleanup(directory: str, owned: bool) -> None:
        if owned:
            shutil.rmtree(directory, ignore_errors=True)

    def close(self) -> None:
        self._paths.clear()
        self._finalizer()

    def store(self, name: str, array: np.ndarray) -> np.ndarray:
        if os.sep in name or name in ("", ".", ".."):
            raise StorageError(f"invalid backend array name {name!r}")
        array = np.ascontiguousarray(array)
        # A fresh revision per store: replacing an array (segment rewrite
        # during repair) must not invalidate live memmap views of the old
        # bytes mid-scan, so the old file is unlinked, not overwritten.
        self._revision += 1
        path = os.path.join(self.directory, f"{name}.{self._revision}.bin")
        with open(path, "wb") as handle:
            handle.write(memoryview(array).cast("B"))
        previous = self._paths.pop(name, None)
        if previous is not None:
            try:
                os.unlink(previous)
            except OSError:  # pragma: no cover
                pass
        self._paths[name] = path
        if array.size == 0:
            # np.memmap rejects zero-length mappings; an empty array has
            # no pages to keep out of RAM anyway.
            return np.zeros(array.shape, dtype=array.dtype)
        view = np.memmap(path, dtype=array.dtype, mode="r", shape=array.shape)
        return view

    def delete(self, name: str) -> None:
        path = self._paths.pop(name, None)
        if path is not None:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover
                pass

    def on_disk_nbytes(self) -> int:
        """Total bytes of all live scratch files of this backend."""
        total = 0
        for path in self._paths.values():
            try:
                total += os.path.getsize(path)
            except OSError:  # pragma: no cover
                pass
        return total


def resolve_backend(kind: str, *, directory: Optional[str] = None) -> ArrayBackend:
    """Build the backend for ``kind`` (``"ram"`` or ``"mmap"``)."""
    if kind == "ram":
        return RamBackend()
    if kind == "mmap":
        return MmapBackend(directory)
    raise StorageError(f"unknown store kind {kind!r}, expected one of {STORE_KINDS}")
