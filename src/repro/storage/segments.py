"""Segmented, append-only RR-set store with per-segment inverted indexes.

The flat :class:`repro.influence.ris.RRCollection` holds the whole
packed collection (and the objective layer its whole inverted index) as
single arrays, so the working set is O(total entries) no matter what is
being computed. This store cuts the collection into fixed-byte-budget
*segments* as sampling streams in:

* each segment holds its own packed ``(set_indptr, set_indices)`` slice
  (local row ids, ``start`` gives the global id of row 0) plus its own
  inverted ``node -> global RR-set ids`` index, built at flush time;
* all six arrays live on an :class:`repro.storage.backend.ArrayBackend`
  — memory-mapped files for the out-of-core tier — and every whole-store
  operation walks segment by segment, releasing each segment's pages as
  its pass completes, so resident memory is bounded by one segment
  regardless of collection size;
* per-segment inverted entries store *global* ids in sorted order, and
  segment starts increase, so concatenating a node's per-segment slices
  reproduces exactly the flat inverted index slice — integer coverage
  counts folded across segments equal the flat counts, which is what
  makes segmented greedy selections bitwise-identical to the flat path;
* repair rewrites only the segments owning affected sets (new file
  revisions; untouched segments keep their bytes), mirroring PR 6's
  splice-in-place at segment granularity.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import StorageError
from repro.storage.backend import ArrayBackend, release_array, resident_nbytes
from repro.utils.csr import (
    batch_group_counts,
    concat_packed,
    invert_csr_segment,
    splice_packed,
)

__all__ = ["RRSegment", "SegmentedRRStore", "DEFAULT_SEGMENT_BYTES"]

#: Default byte target per segment (entries of ``set_indices`` +
#: ``inv_indices``; 16 bytes per packed entry at int64). 32 MB keeps a
#: segment pass comfortably cache-and-budget friendly while holding
#: enough rows to amortize the per-segment numpy call overhead.
DEFAULT_SEGMENT_BYTES = 32 << 20

#: Bytes one packed entry costs on disk across both per-segment arrays.
_BYTES_PER_ENTRY = 16


class RRSegment:
    """One immutable slice of the collection plus its inverted index."""

    __slots__ = (
        "index",
        "start",
        "set_indptr",
        "set_indices",
        "inv_indptr",
        "inv_indices",
    )

    def __init__(
        self,
        index: int,
        start: int,
        set_indptr: np.ndarray,
        set_indices: np.ndarray,
        inv_indptr: np.ndarray,
        inv_indices: np.ndarray,
    ) -> None:
        self.index = int(index)
        self.start = int(start)
        self.set_indptr = set_indptr
        self.set_indices = set_indices
        self.inv_indptr = inv_indptr
        self.inv_indices = inv_indices

    @property
    def num_sets(self) -> int:
        return self.set_indptr.size - 1

    @property
    def num_entries(self) -> int:
        return int(self.set_indices.size)

    @property
    def stop(self) -> int:
        """Global id one past the last RR set of this segment."""
        return self.start + self.num_sets

    def roots(self) -> np.ndarray:
        """Root node of every set (sets are stored root-first)."""
        return np.asarray(self.set_indices[self.set_indptr[:-1]])

    def member_slice(self, item: int) -> np.ndarray:
        """Global ids of this segment's RR sets containing node ``item``."""
        return self.inv_indices[self.inv_indptr[item] : self.inv_indptr[item + 1]]

    def entry_rows_global(self) -> np.ndarray:
        """Global RR-set id of every packed entry (materialized per call)."""
        return np.repeat(
            np.arange(self.start, self.stop, dtype=np.int64),
            np.diff(self.set_indptr),
        )

    def _arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        return (self.set_indptr, self.set_indices, self.inv_indptr, self.inv_indices)

    def resident_nbytes(self) -> int:
        return sum(resident_nbytes(arr) for arr in self._arrays())

    def on_disk_nbytes(self) -> int:
        return int(sum(arr.nbytes for arr in self._arrays()))

    def release(self) -> None:
        """Drop resident pages of all memory-mapped arrays (best effort)."""
        for arr in self._arrays():
            release_array(arr)


class SegmentedRRStore:
    """Byte-budgeted segments of an RR collection, built append-only.

    Build protocol: :meth:`append_chunk` packed chunks as sampling
    streams them in (chunks are atomic — a segment is cut at a chunk
    boundary once it holds at least ``segment_bytes`` worth of entries),
    then :meth:`finalize` once. After that the store is immutable except
    through :meth:`replace_sets` (the repair path), which rewrites whole
    segments in place.
    """

    def __init__(
        self,
        num_nodes: int,
        backend: ArrayBackend,
        *,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> None:
        if num_nodes <= 0:
            raise StorageError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = int(num_nodes)
        self.backend = backend
        self.segment_bytes = max(int(segment_bytes), _BYTES_PER_ENTRY)
        self.segments: list[RRSegment] = []
        self._pending: list[tuple[np.ndarray, np.ndarray]] = []
        self._pending_entries = 0
        self._next_start = 0
        self._finalized = False
        self._starts = np.zeros(0, dtype=np.int64)

    # -- build -----------------------------------------------------------
    @property
    def _entries_per_segment(self) -> int:
        return max(self.segment_bytes // _BYTES_PER_ENTRY, 1)

    def append_chunk(self, set_indptr: np.ndarray, set_indices: np.ndarray) -> None:
        """Buffer one packed chunk; flush a segment when the budget fills."""
        if self._finalized:
            raise StorageError("cannot append to a finalized segment store")
        if set_indptr.size < 1:
            raise StorageError("chunk indptr must have at least one entry")
        if set_indptr.size == 1:
            return
        self._pending.append((set_indptr, set_indices))
        self._pending_entries += int(set_indices.size)
        if self._pending_entries >= self._entries_per_segment:
            self._flush_segment()

    def _flush_segment(self) -> None:
        if not self._pending:
            return
        indptr, indices = concat_packed(self._pending)
        self._pending = []
        self._pending_entries = 0
        segment = self._build_segment(
            len(self.segments), self._next_start, indptr, indices
        )
        self._next_start = segment.stop
        self.segments.append(segment)

    def _build_segment(
        self, index: int, start: int, indptr: np.ndarray, indices: np.ndarray
    ) -> RRSegment:
        inv_indptr, inv_indices = invert_csr_segment(
            indptr, indices, self.num_nodes, start
        )
        store = self.backend.store
        segment = RRSegment(
            index,
            start,
            store(f"seg{index:05d}-set_indptr", indptr),
            store(f"seg{index:05d}-set_indices", indices),
            store(f"seg{index:05d}-inv_indptr", inv_indptr),
            store(f"seg{index:05d}-inv_indices", inv_indices),
        )
        segment.release()
        return segment

    def finalize(self) -> "SegmentedRRStore":
        """Flush the remainder and freeze the segment list."""
        if self._finalized:
            return self
        self._flush_segment()
        self._finalized = True
        self._starts = np.asarray([seg.start for seg in self.segments], dtype=np.int64)
        return self

    @classmethod
    def from_chunks(
        cls,
        chunks: Iterable[tuple[np.ndarray, np.ndarray]],
        num_nodes: int,
        backend: ArrayBackend,
        *,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ) -> "SegmentedRRStore":
        store = cls(num_nodes, backend, segment_bytes=segment_bytes)
        for set_indptr, set_indices in chunks:
            store.append_chunk(set_indptr, set_indices)
        return store.finalize()

    # -- whole-store queries ---------------------------------------------
    def _require_finalized(self) -> None:
        if not self._finalized:
            raise StorageError("segment store must be finalized first")

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    @property
    def num_sets(self) -> int:
        if self._finalized:
            return self._next_start
        return sum(seg.num_sets for seg in self.segments)

    @property
    def total_entries(self) -> int:
        return sum(seg.num_entries for seg in self.segments)

    def iter_segments(self, *, release: bool = True) -> Iterator[RRSegment]:
        """Yield segments in order, releasing each one's pages afterwards.

        ``release=True`` is the budget contract: a full pass keeps at
        most one segment's pages resident at a time.
        """
        self._require_finalized()
        for segment in self.segments:
            try:
                yield segment
            finally:
                if release:
                    segment.release()

    def roots(self) -> np.ndarray:
        """Root of every RR set, in global id order (heap-resident)."""
        self._require_finalized()
        if not self.segments:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate([seg.roots() for seg in self.iter_segments()])

    def member_ids(self, item: int) -> np.ndarray:
        """Global ids of all RR sets containing ``item``, sorted ascending.

        Concatenation order equals sorted order because each segment's
        inverted slice is sorted and segment id ranges are disjoint and
        increasing — bitwise the flat inverted-index slice.

        Parts are copied to the heap and each segment released as it is
        read: a point lookup faults far more than the bytes it needs
        (the kernel maps file pages in multi-megabyte folios), so
        leaving pages mapped would grow the resident set by segment
        count, not by ids returned.
        """
        self._require_finalized()
        parts = [
            np.array(segment.member_slice(item), dtype=np.int64)
            for segment in self.iter_segments()
        ]
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    def fold_group_counts(
        self,
        items: np.ndarray,
        already_counted: np.ndarray,
        labels: np.ndarray,
        num_groups: int,
    ) -> np.ndarray:
        """Per-``(item, group)`` fresh-coverage counts folded over segments.

        Integer accumulation of :func:`repro.utils.csr.batch_group_counts`
        per segment — sums to exactly the flat counts, so downstream gain
        vectors (counts / group RR-set counts) are bitwise-identical to
        the flat objective's.
        """
        self._require_finalized()
        total = np.zeros((items.size, num_groups), dtype=np.int64)
        for segment in self.iter_segments():
            total += batch_group_counts(
                segment.inv_indptr,
                segment.inv_indices,
                items,
                already_counted,
                labels,
                num_groups,
            )
        return total

    def hit_rows(self, node_mask: np.ndarray) -> np.ndarray:
        """Boolean per-RR-set flags: does the set contain a masked node?"""
        self._require_finalized()
        hit = np.zeros(self.num_sets, dtype=bool)
        for segment in self.iter_segments():
            entry_hits = node_mask[segment.set_indices]
            rows = segment.entry_rows_global()[entry_hits]
            hit[rows] = True
        return hit

    # -- repair ----------------------------------------------------------
    def segment_of(self, global_ids: np.ndarray) -> np.ndarray:
        """Owning segment index of every global RR-set id."""
        self._require_finalized()
        if self._starts.size == 0:
            raise StorageError("store has no segments")
        return np.searchsorted(self._starts, global_ids, side="right") - 1

    def roots_of(self, global_ids: np.ndarray) -> np.ndarray:
        """Roots of ``global_ids`` (ascending ids => one pass per segment)."""
        self._require_finalized()
        owners = self.segment_of(global_ids)
        parts = []
        for idx in np.unique(owners):
            segment = self.segments[idx]
            local = global_ids[owners == idx] - segment.start
            parts.append(np.asarray(segment.set_indices[segment.set_indptr[local]]))
            segment.release()
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(parts) if len(parts) > 1 else parts[0]

    def replace_sets(
        self,
        global_ids: np.ndarray,
        sub_indptr: np.ndarray,
        sub_indices: np.ndarray,
    ) -> int:
        """Splice replacement rows in, rewriting only the owning segments.

        ``global_ids`` must be sorted ascending (the affected-set rule
        produces them that way); row ``i`` of the packed sub-CSR replaces
        global set ``global_ids[i]``. Each touched segment is spliced,
        re-inverted and re-stored as a fresh backend revision; untouched
        segments are not read at all. Returns the number of segments
        rewritten. Set counts never change, so global ids stay stable.
        """
        self._require_finalized()
        if global_ids.size == 0:
            return 0
        if np.any(np.diff(global_ids) <= 0):
            raise StorageError("global_ids must be sorted ascending")
        owners = self.segment_of(global_ids)
        rewritten = 0
        for idx in np.unique(owners):
            segment = self.segments[idx]
            in_seg = owners == idx
            local_rows = global_ids[in_seg] - segment.start
            # Cut the matching rows out of the packed replacement CSR.
            sel = np.flatnonzero(in_seg)
            lo, hi = sel[0], sel[-1] + 1
            if not np.array_equal(sel, np.arange(lo, hi)):
                raise StorageError("global_ids must be sorted ascending")
            part_indptr = sub_indptr[lo : hi + 1] - sub_indptr[lo]
            part_indices = sub_indices[sub_indptr[lo] : sub_indptr[hi]]
            new_indptr, new_indices = splice_packed(
                np.asarray(segment.set_indptr),
                np.asarray(segment.set_indices),
                local_rows,
                part_indptr,
                part_indices,
            )
            self.segments[idx] = self._build_segment(
                segment.index, segment.start, new_indptr, new_indices
            )
            rewritten += 1
        return rewritten

    # -- accounting ------------------------------------------------------
    def resident_bytes(self) -> int:
        """Heap bytes currently pinned by segment arrays (0 when mapped)."""
        return sum(seg.resident_nbytes() for seg in self.segments)

    def on_disk_bytes(self) -> int:
        return sum(seg.on_disk_nbytes() for seg in self.segments)

    def release(self) -> None:
        for segment in self.segments:
            segment.release()

    def storage_info(self) -> dict[str, int | str]:
        """JSON-safe storage-tier summary (service ``stats`` embeds this)."""
        return {
            "store_kind": self.backend.kind,
            "segments": self.num_segments,
            "segment_bytes": self.segment_bytes,
            "num_sets": self.num_sets,
            "total_entries": self.total_entries,
            "resident_bytes": self.resident_bytes(),
            "on_disk_bytes": self.on_disk_bytes(),
        }
