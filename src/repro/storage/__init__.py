"""Out-of-core storage tier: array backends and segmented RR stores.

The storage tier decouples *where CSR arrays live* (RAM vs memory-mapped
files) from the solver layers that consume them. See DESIGN.md §10.
"""

from repro.storage.backend import (
    ArrayBackend,
    MmapBackend,
    RamBackend,
    release_array,
    resident_nbytes,
    resolve_backend,
)
from repro.storage.segments import RRSegment, SegmentedRRStore

__all__ = [
    "ArrayBackend",
    "MmapBackend",
    "RamBackend",
    "RRSegment",
    "SegmentedRRStore",
    "release_array",
    "resident_nbytes",
    "resolve_backend",
]
