"""Plain-text rendering of experiment output.

The benchmark harness prints these tables so that a run's stdout can be
compared side by side with the paper's plots (EXPERIMENTS.md records the
comparison).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.harness import SweepResult


def render_series(
    sweep: SweepResult,
    metric: str = "utility",
    *,
    precision: int = 4,
) -> str:
    """One row per algorithm, one column per parameter value.

    ``metric`` is any :class:`ExperimentRow` numeric field
    (``utility``, ``fairness``, ``runtime``, ``oracle_calls``).
    """
    algorithms = sweep.algorithms()
    values = sorted({row.value for row in sweep.rows})
    header = [f"{sweep.parameter}={v:g}" for v in values]
    name_width = max([len(a) for a in algorithms] + [len(sweep.dataset)])
    col_width = max([len(h) for h in header] + [precision + 4])
    lines = [
        f"# {sweep.dataset} — {metric} vs {sweep.parameter}",
        " " * name_width + "  " + "  ".join(h.rjust(col_width) for h in header),
    ]
    for algo in algorithms:
        cells = []
        lookup = {v: m for v, m in sweep.series(algo, metric)}
        for v in values:
            if v in lookup:
                cells.append(f"{lookup[v]:.{precision}f}".rjust(col_width))
            else:
                cells.append("-".rjust(col_width))
        lines.append(algo.ljust(name_width) + "  " + "  ".join(cells))
    if sweep.references:
        refs = ", ".join(f"{k}={v:.{precision}f}" for k, v in sweep.references.items())
        lines.append(f"references: {refs}")
    return "\n".join(lines)


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Generic fixed-width table (used for Tables 1–2)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max([len(col)] + [len(r[i]) for r in str_rows])
        for i, col in enumerate(columns)
    ]
    lines = [f"# {title}"]
    lines.append("  ".join(c.ljust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
