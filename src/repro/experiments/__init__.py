"""Experiment harness regenerating the paper's tables and figures.

* :mod:`repro.experiments.harness` — generic sweep runners (vary ``tau``,
  vary ``k``) over any dataset/algorithm combination, with sub-routine
  reuse and optional Monte-Carlo re-scoring for influence instances.
* :mod:`repro.experiments.figures` — one entry per paper figure/table,
  binding the harness to the exact workload and parameter grids.
* :mod:`repro.experiments.reporting` — plain-text series/table rendering
  so benches print rows directly comparable to the paper's plots.
"""

from repro.experiments.harness import (
    ExperimentRow,
    SweepResult,
    sweep_k,
    sweep_tau,
)
from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.pareto import FrontierPoint, hypervolume, pareto_frontier
from repro.experiments.plotting import Series, ascii_chart, sweep_chart
from repro.experiments.replication import ReplicatedSweep, replicate_tau_sweep
from repro.experiments.reporting import render_series, render_table
from repro.experiments.verification import (
    ClaimReport,
    check_dominance,
    check_flat_baseline,
    check_tradeoff_shape,
    check_weak_constraint,
    verify_paper_claims,
)

__all__ = [
    "ClaimReport",
    "ExperimentRow",
    "FIGURES",
    "check_dominance",
    "check_flat_baseline",
    "check_tradeoff_shape",
    "check_weak_constraint",
    "verify_paper_claims",
    "FrontierPoint",
    "ReplicatedSweep",
    "Series",
    "SweepResult",
    "ascii_chart",
    "hypervolume",
    "pareto_frontier",
    "render_series",
    "render_table",
    "replicate_tau_sweep",
    "run_figure",
    "sweep_chart",
    "sweep_k",
    "sweep_tau",
]
