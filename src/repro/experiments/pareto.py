"""Utility–fairness Pareto frontiers.

The figures plot ``f(S)`` and ``g(S)`` separately against ``tau``; the
frontier view condenses a sweep into the set of non-dominated
``(g, f)`` points per algorithm — the cleanest way to compare how well
two algorithms trade the objectives (used by the README discussion and
available to library users for their own instances).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.harness import SweepResult


@dataclass(frozen=True)
class FrontierPoint:
    """One non-dominated (fairness, utility) pair with its provenance."""

    fairness: float
    utility: float
    tau: float
    algorithm: str


def pareto_frontier(
    sweep: SweepResult, algorithm: str
) -> list[FrontierPoint]:
    """Non-dominated ``(g, f)`` points of one algorithm in a tau sweep.

    A point dominates another when it is at least as good on both
    objectives and strictly better on one. The result is sorted by
    ascending fairness.
    """
    points = [
        FrontierPoint(
            fairness=row.fairness,
            utility=row.utility,
            tau=row.value,
            algorithm=row.algorithm,
        )
        for row in sweep.rows
        if row.algorithm == algorithm
    ]
    frontier: list[FrontierPoint] = []
    for p in points:
        dominated = any(
            (q.fairness >= p.fairness and q.utility >= p.utility)
            and (q.fairness > p.fairness or q.utility > p.utility)
            for q in points
        )
        if not dominated:
            frontier.append(p)
    # Deduplicate identical (g, f) pairs, keep the smallest tau for each.
    unique: dict[tuple[float, float], FrontierPoint] = {}
    for p in sorted(frontier, key=lambda q: q.tau):
        unique.setdefault((round(p.fairness, 12), round(p.utility, 12)), p)
    return sorted(unique.values(), key=lambda q: q.fairness)


def hypervolume(
    frontier: Sequence[FrontierPoint],
    *,
    reference: tuple[float, float] = (0.0, 0.0),
) -> float:
    """2-d hypervolume of a frontier w.r.t. a reference point.

    The standard scalar summary of frontier quality: the area dominated
    by the frontier above ``reference``. Larger is better; comparing two
    algorithms' hypervolumes on the same sweep ranks their trade-offs.
    """
    ref_g, ref_f = reference
    points = sorted(
        [
            p
            for p in frontier
            if p.fairness > ref_g and p.utility > ref_f
        ],
        key=lambda p: p.fairness,
    )
    area = 0.0
    prev_g = ref_g
    # Sweep fairness left to right; at each step the best remaining
    # utility among points to the right bounds the rectangle height.
    for i, p in enumerate(points):
        best_f = max(q.utility for q in points[i:])
        area += (p.fairness - prev_g) * (best_f - ref_f)
        prev_g = p.fairness
    return area
