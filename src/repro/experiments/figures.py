"""Per-figure experiment definitions (the paper's evaluation, Section 5).

Every figure/table of the paper has an entry in :data:`FIGURES` mapping to
panels; :func:`run_figure` executes all panels and returns their sweeps.

Two scales are provided:

* ``"small"`` (default) — shrunken datasets and Monte-Carlo budgets so
  the full suite regenerates on a laptop in minutes. Curve *shapes* match
  the paper; absolute values drift with size.
* ``"paper"`` — the published sizes (Tables 1–2). Pokec remains scaled to
  50k nodes by default (DESIGN.md §6); pass dataset overrides to go
  bigger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.datasets.registry import load_dataset
from repro.experiments.harness import SweepResult, sweep_k, sweep_tau
from repro.utils.rng import SeedLike

TAUS = tuple(round(0.1 * i, 1) for i in range(1, 10))


@dataclass
class Panel:
    """One sub-plot: a dataset plus its sweep configuration."""

    name: str
    dataset: str
    sweep: str  # 'tau' or 'k'
    k: int = 5
    tau: float = 0.8
    taus: Sequence[float] = TAUS
    ks: Sequence[int] = (5, 10, 20, 30, 40, 50)
    include_optimal: bool = False
    dataset_overrides: dict[str, Any] = field(default_factory=dict)
    small_overrides: dict[str, Any] = field(default_factory=dict)
    small_ks: Optional[Sequence[int]] = None


@dataclass
class FigureSpec:
    """A figure (or table) of the paper."""

    figure_id: str
    title: str
    panels: list[Panel]


def _mc_tau_panels() -> list[Panel]:
    return [
        Panel(
            "a: RAND (c=2, k=5)", "rand-mc-c2", "tau", k=5,
            include_optimal=True,
            small_overrides={"num_nodes": 120},
        ),
        Panel(
            "b: RAND (c=4, k=5)", "rand-mc-c4", "tau", k=5,
            include_optimal=True,
            small_overrides={"num_nodes": 120},
        ),
        Panel("c: DBLP (c=5, k=10)", "dblp-mc", "tau", k=10,
              small_overrides={"num_nodes": 800}),
    ]


FIGURES: dict[str, FigureSpec] = {
    "fig3": FigureSpec(
        "fig3", "Maximum coverage vs tau (RAND c=2/c=4, DBLP)", _mc_tau_panels()
    ),
    "fig4": FigureSpec(
        "fig4",
        "Maximum coverage vs k (Facebook c=2/c=4, Pokec gender/age; tau=0.8)",
        [
            Panel("a: Facebook (Age, c=2)", "facebook-mc-c2", "k",
                  small_ks=(5, 10, 20), small_overrides={}),
            Panel("b: Facebook (Age, c=4)", "facebook-mc-c4", "k",
                  small_ks=(5, 10, 20)),
            Panel("c: Pokec (Gender, c=2)", "pokec-mc-gender", "k",
                  ks=(10, 40, 70, 100), small_ks=(10, 20),
                  small_overrides={"num_nodes": 3_000}),
            Panel("d: Pokec (Age, c=6)", "pokec-mc-age", "k",
                  ks=(10, 40, 70, 100), small_ks=(10, 20),
                  small_overrides={"num_nodes": 3_000}),
        ],
    ),
    "fig5": FigureSpec(
        "fig5",
        "Influence maximization vs tau (RAND c=2/c=4, DBLP)",
        [
            Panel("a: RAND (c=2, k=5)", "rand-im-c2", "tau", k=5),
            Panel("b: RAND (c=4, k=5)", "rand-im-c4", "tau", k=5),
            Panel("c: DBLP (c=5, k=10)", "dblp-im", "tau", k=10,
                  small_overrides={"num_nodes": 800}),
        ],
    ),
    "fig6": FigureSpec(
        "fig6",
        "Influence maximization vs k (Facebook, Pokec; tau=0.8)",
        [
            Panel("a: Facebook (Age, c=2)", "facebook-im-c2", "k",
                  small_ks=(5, 10, 20)),
            Panel("b: Facebook (Age, c=4)", "facebook-im-c4", "k",
                  small_ks=(5, 10, 20)),
            Panel("c: Pokec (Gender, c=2)", "pokec-im-gender", "k",
                  ks=(10, 40, 70, 100), small_ks=(10, 20),
                  small_overrides={"num_nodes": 3_000}),
            Panel("d: Pokec (Age, c=6)", "pokec-im-age", "k",
                  ks=(10, 40, 70, 100), small_ks=(10, 20),
                  small_overrides={"num_nodes": 3_000}),
        ],
    ),
    "fig7": FigureSpec(
        "fig7",
        "Facility location vs tau (RAND c=2/c=3, Adult-Small)",
        [
            # Small scale shrinks the point sets: the robust FL ILP that
            # produces OPT_g is the single most expensive solve in the
            # whole evaluation (HiGHS needs ~1 min at m=n=100).
            Panel("a: RAND (c=2, k=5)", "rand-fl-c2", "tau", k=5,
                  include_optimal=True,
                  small_overrides={"num_points": 60}),
            Panel("b: RAND (c=3, k=5)", "rand-fl-c3", "tau", k=5,
                  include_optimal=True,
                  small_overrides={"num_points": 60}),
            Panel("c: Adult-Small (c=5, k=5)", "adult-small", "tau", k=5,
                  include_optimal=True,
                  small_overrides={"num_records": 60}),
        ],
    ),
    "fig8": FigureSpec(
        "fig8",
        "Facility location vs k (Adult c=2/c=5, FourSquare NYC/TKY; tau=0.8)",
        [
            Panel("a: Adult (Gender, c=2)", "adult-gender", "k",
                  small_ks=(5, 10, 20)),
            Panel("b: Adult (Race, c=5)", "adult-race", "k",
                  small_ks=(5, 10, 20)),
            Panel("c: FourSquare-NYC (c=1000)", "foursquare-nyc", "k",
                  small_ks=(5, 10, 20),
                  small_overrides={"seed": None}),
            Panel("d: FourSquare-TKY (c=1000)", "foursquare-tky", "k",
                  small_ks=(5, 10, 20)),
        ],
    ),
    # Fig. 9 (epsilon sensitivity) has a dedicated runner: run_figure9.
    "fig10": FigureSpec(
        "fig10",
        "MC and IM vs tau on Facebook (c=2/c=4, k=5)",
        [
            Panel("a: Facebook (MC, c=2)", "facebook-mc-c2", "tau", k=5),
            Panel("b: Facebook (MC, c=4)", "facebook-mc-c4", "tau", k=5),
            Panel("c: Facebook (IM, c=2)", "facebook-im-c2", "tau", k=5),
            Panel("d: Facebook (IM, c=4)", "facebook-im-c4", "tau", k=5),
        ],
    ),
    "fig11": FigureSpec(
        "fig11",
        "MC and IM vs k on DBLP (c=5, tau=0.8)",
        [
            Panel("a: DBLP (MC, c=5)", "dblp-mc", "k",
                  small_ks=(5, 10, 20), small_overrides={"num_nodes": 800}),
            Panel("b: DBLP (IM, c=5)", "dblp-im", "k",
                  small_ks=(5, 10, 20), small_overrides={"num_nodes": 800}),
        ],
    ),
}


def run_figure(
    figure_id: str,
    *,
    scale: str = "small",
    seed: SeedLike = 0,
    taus: Optional[Sequence[float]] = None,
    algorithms: Optional[Sequence[str]] = None,
    im_samples: Optional[int] = None,
    mc_simulations: Optional[int] = None,
    workers: Optional[int] = None,
) -> dict[str, SweepResult]:
    """Execute every panel of ``figure_id`` and return name -> sweep.

    ``workers`` spreads each panel's RR sampling and Monte-Carlo
    evaluation over a process pool (see :mod:`repro.utils.parallel`);
    any positive count returns identical sweeps.
    """
    if figure_id not in FIGURES:
        raise KeyError(
            f"unknown figure {figure_id!r}; available: {sorted(FIGURES)}"
        )
    if scale not in ("small", "paper"):
        raise ValueError(f"scale must be 'small' or 'paper', got {scale!r}")
    spec = FIGURES[figure_id]
    small = scale == "small"
    if im_samples is None:
        im_samples = 1_000 if small else 10_000
    if mc_simulations is None:
        mc_simulations = 200 if small else 10_000
    results: dict[str, SweepResult] = {}
    for panel in spec.panels:
        overrides = dict(panel.dataset_overrides)
        if small:
            overrides.update(panel.small_overrides)
        overrides.pop("seed", None)
        dataset = load_dataset(panel.dataset, seed=seed, **overrides)
        panel_taus = tuple(taus) if taus is not None else tuple(panel.taus)
        if small and taus is None:
            panel_taus = (0.1, 0.3, 0.5, 0.7, 0.9)
        kwargs: dict[str, Any] = {
            "im_samples": im_samples,
            "mc_simulations": mc_simulations,
            "seed": seed,
            "workers": workers,
        }
        if algorithms is not None:
            kwargs["algorithms"] = list(algorithms)
        if panel.sweep == "tau":
            include_optimal = panel.include_optimal and (
                small or dataset.kind == "facility"
            )
            sweep = sweep_tau(
                dataset, panel.k, panel_taus,
                include_optimal=include_optimal, **kwargs,
            )
        else:
            ks = panel.small_ks if (small and panel.small_ks) else panel.ks
            sweep = sweep_k(dataset, list(ks), panel.tau, **kwargs)
        results[panel.name] = sweep
    return results


def run_figure9(
    *,
    epsilons: Sequence[float] = (0.05, 0.1, 0.2, 0.3, 0.4, 0.5),
    k: int = 5,
    tau: float = 0.8,
    scale: str = "small",
    seed: SeedLike = 0,
    workers: Optional[int] = None,
) -> dict[str, list[tuple[float, float, float]]]:
    """Fig. 9: BSM-Saturate's sensitivity to the error parameter eps.

    Returns panel -> ``[(eps, f(S), g(S)), ...]`` for the four panels
    (MC c=2, MC c=4, IM c=2, FL c=2 on RAND).
    """
    from repro.core.baselines import greedy_utility
    from repro.core.bsm_saturate import bsm_saturate
    from repro.core.saturate import saturate as run_saturate
    from repro.experiments.harness import _objective_for
    from repro.utils.rng import as_generator

    small = scale == "small"
    num_nodes = 120 if small else 500
    panels: dict[str, Any] = {}
    mc2 = load_dataset("rand-mc-c2", seed=seed, num_nodes=num_nodes)
    mc4 = load_dataset("rand-mc-c4", seed=seed, num_nodes=num_nodes)
    im2 = load_dataset("rand-im-c2", seed=seed)
    fl2 = load_dataset("rand-fl-c2", seed=seed)
    panels["a: RAND (MC, c=2)"] = mc2.objective
    panels["b: RAND (MC, c=4)"] = mc4.objective
    # Built through the harness's shared objective builder so figure 9
    # derives its sampling seed the same way the sweeps do. (Each runner
    # loads its own graph object, so the identity-keyed cache does not
    # share samples across separate runs — only within one.)
    panels["c: RAND (IM, c=2)"] = _objective_for(
        im2,
        seed=int(as_generator(seed).integers(0, 2**62)),
        im_samples=1_000 if small else 10_000,
        workers=workers,
    )
    panels["d: RAND (FL, c=2)"] = fl2.objective
    out: dict[str, list[tuple[float, float, float]]] = {}
    for name, objective in panels.items():
        greedy_res = greedy_utility(objective, k)
        saturate_res = run_saturate(objective, k)
        series: list[tuple[float, float, float]] = []
        for eps in epsilons:
            result = bsm_saturate(
                objective, k, tau,
                epsilon=float(eps),
                greedy_result=greedy_res,
                saturate_result=saturate_res,
            )
            series.append((float(eps), result.utility, result.fairness))
        out[name] = series
    return out


def dataset_statistics(names: Sequence[str], *, seed: SeedLike = 0,
                       overrides: Optional[Mapping[str, Mapping[str, Any]]] = None
                       ) -> list[dict[str, Any]]:
    """Regenerate the rows of Tables 1–2 for the given dataset names."""
    import numpy as np

    rows: list[dict[str, Any]] = []
    for name in names:
        extra = dict((overrides or {}).get(name, {}))
        dataset = load_dataset(name, seed=seed, **extra)
        if dataset.kind in ("coverage", "influence"):
            graph = dataset.graph
            sizes = graph.group_sizes()
            rows.append(
                {
                    "dataset": name,
                    "n": graph.num_nodes,
                    "m": graph.num_nodes,
                    "edges": graph.num_edges,
                    "c": graph.num_groups,
                    "group_percent": [
                        round(100.0 * int(s) / graph.num_nodes, 1) for s in sizes
                    ],
                }
            )
        else:
            objective = dataset.objective
            sizes = objective.group_sizes
            rows.append(
                {
                    "dataset": name,
                    "n": objective.num_items,
                    "m": objective.num_users,
                    "edges": None,
                    "c": objective.num_groups,
                    "group_percent": [
                        round(100.0 * int(s) / objective.num_users, 1)
                        for s in np.asarray(sizes)
                    ],
                }
            )
    return rows
