"""Generic sweep runners behind every figure.

The paper's figures all have the same anatomy: fix a dataset and either
``k`` (sweeping ``tau``, Figs. 3/5/7/10) or ``tau`` (sweeping ``k``,
Figs. 4/6/8/11), then plot ``f(S)``, ``g(S)`` and runtime per algorithm.
The runners here produce those series as plain data rows.

Implementation notes mirroring the paper's Section 5:

* ``Greedy``/``Saturate`` sub-routine outputs are computed once per
  ``(dataset, k)`` and shared across the ``tau`` sweep and across the BSM
  algorithms — their curves are plotted as flat lines in the figures.
* For influence instances the greedy runs on RIS estimates, but reported
  ``f(S)``/``g(S)`` come from independent Monte-Carlo simulation
  (``mc_simulations``; the paper uses 10,000).
* Influence sweeps reuse one sampled RR collection and one evaluation
  cascade bundle across all tau/k sweep points (module-level caches keyed
  by seed, dataset and graph identity — the scaling-notes
  recommendation of DESIGN.md §6), so repeated sweep points pay for
  solver time only.
* ``OPT'_g`` (the dashed green line) is ``Saturate``'s value; the solid
  line ``OPT_g`` comes from the ILP when the instance is small enough.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.core.baselines import greedy_utility
from repro.core.bsm_saturate import bsm_saturate
from repro.core.functions import GroupedObjective
from repro.core.result import SolverResult
from repro.core.saturate import saturate
from repro.core.smsc import smsc
from repro.core.tsgreedy import bsm_tsgreedy
from repro.datasets.registry import Dataset
from repro.utils.rng import SeedLike, as_generator

#: Algorithms that depend on tau (curves); the rest are flat baselines.
TAU_AWARE = ("BSM-TSGreedy", "BSM-Saturate", "BSM-Optimal")
DEFAULT_ALGORITHMS = (
    "Greedy",
    "Saturate",
    "SMSC",
    "BSM-TSGreedy",
    "BSM-Saturate",
)


@dataclass
class ExperimentRow:
    """One (algorithm, parameter point) measurement."""

    algorithm: str
    parameter: str  # 'tau' or 'k'
    value: float
    utility: float
    fairness: float
    runtime: float
    oracle_calls: int
    solution_size: int
    feasible: bool
    extra: dict[str, Any] = field(default_factory=dict)


@dataclass
class SweepResult:
    """All rows of one sweep plus instance-level reference values."""

    dataset: str
    parameter: str
    rows: list[ExperimentRow]
    references: dict[str, float] = field(default_factory=dict)

    def series(self, algorithm: str, metric: str = "utility") -> list[tuple[float, float]]:
        """``[(parameter value, metric), ...]`` for one algorithm."""
        return [
            (row.value, getattr(row, metric))
            for row in self.rows
            if row.algorithm == algorithm
        ]

    def algorithms(self) -> list[str]:
        seen: dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row.algorithm, None)
        return list(seen)


# Sampled-collection and Monte-Carlo-evaluation reuse lives in the
# service layer's warm sessions (repro.service.session): RR sampling and
# the 10,000-cascade evaluation dominate influence sweeps (DESIGN.md
# section 6), and a tau/k sweep re-scores the same graph -- often the
# same solution -- at every sweep point. `shared_session` keys sessions
# by dataset identity; an in-place `add_edge`/`set_arc_probability`
# between sweeps bumps `Graph.version` and the session *repairs* its
# warm objective against the mutation delta (DESIGN.md section 9) --
# only RR sets touching changed arcs are regenerated -- while
# whole-graph rewrites (`set_edge_probabilities`) fall back to a full
# resample. Every cache is a byte-budgeted LRU (`repro.utils.caching`),
# so a long-lived batch process cannot leak -- the unbounded module
# dicts that used to live here are gone. The `repro serve` daemon runs
# through the same sessions, so batch jobs and the service share one
# reuse path.


def _objective_for(
    dataset: Dataset,
    *,
    seed: int,
    im_samples: int,
    workers: Optional[int] = None,
) -> GroupedObjective:
    """Materialise the solvable objective via the dataset's warm session.

    Influence objectives (an RR-set sampling pass plus the packed
    inverted index) are cached per ``(dataset, samples, seed)`` so the
    tau sweep and k sweep of one figure -- and repeated panels across
    figures -- share a single sampled collection.
    """
    from repro.service.session import shared_session

    return shared_session(dataset, workers=workers).objective(
        im_samples=im_samples, sample_seed=seed, workers=workers
    )


def _score(
    dataset: Dataset,
    result: SolverResult,
    *,
    mc_simulations: int,
    seed: int,
    workers: Optional[int] = None,
) -> tuple[float, float]:
    """Final reported (f, g): Monte-Carlo for IM, oracle values otherwise.

    One cascade bundle per ``(graph, seed set, budget, seed)``: within a
    sweep every row re-scoring the same solution (flat baselines, or a
    tau-aware algorithm whose selection did not move between sweep
    points) reuses the batched simulation instead of re-running 10,000
    cascades, and all rows of a sweep share one evaluation seed --
    common random numbers, so cross-algorithm differences are not
    sampling noise.
    """
    if dataset.kind != "influence" or mc_simulations <= 0:
        return result.utility, result.fairness
    from repro.service.session import shared_session

    return shared_session(dataset, workers=workers).evaluate_mc(
        result.solution,
        mc_simulations=mc_simulations,
        mc_seed=seed,
        workers=workers,
    )


def _run_algorithm(
    name: str,
    objective: GroupedObjective,
    k: int,
    tau: float,
    *,
    greedy_res: SolverResult,
    saturate_res: SolverResult,
    epsilon: float,
    ilp_backend: str,
    exact_opt: Optional[dict[str, float]] = None,
) -> SolverResult:
    if name == "Greedy":
        return greedy_res
    if name == "Saturate":
        return saturate_res
    if name == "SMSC":
        return smsc(objective, k)
    if name == "BSM-TSGreedy":
        return bsm_tsgreedy(
            objective, k, tau,
            greedy_result=greedy_res, saturate_result=saturate_res,
        )
    if name == "BSM-Saturate":
        return bsm_saturate(
            objective, k, tau,
            epsilon=epsilon,
            greedy_result=greedy_res, saturate_result=saturate_res,
        )
    if name == "BSM-Optimal":
        from repro.core.optimal import bsm_optimal

        exact_opt = exact_opt or {}
        return bsm_optimal(
            objective, k, tau,
            backend=ilp_backend,
            opt_g=exact_opt.get("opt_g"),
            opt_f=exact_opt.get("opt_f"),
        )
    raise KeyError(f"unknown algorithm {name!r}")


def sweep_tau(
    dataset: Dataset,
    k: int,
    taus: Sequence[float],
    *,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    epsilon: float = 0.05,
    im_samples: int = 2_000,
    mc_simulations: int = 1_000,
    include_optimal: bool = False,
    ilp_backend: str = "scipy",
    seed: SeedLike = 0,
    workers: Optional[int] = None,
) -> SweepResult:
    """Vary the balance factor ``tau`` at fixed ``k`` (Figs. 3/5/7/10).

    ``workers`` spreads RR sampling and Monte-Carlo evaluation over a
    process pool (:mod:`repro.utils.parallel`); solver rows are
    unaffected. Results are identical for every positive worker count.
    """
    # Derive integer sub-seeds up front: they key the sampling/evaluation
    # caches and keep the streams deterministic whether or not a cached
    # collection is hit.
    rng = as_generator(seed)
    sample_seed = int(rng.integers(0, 2**62))
    mc_seed = int(rng.integers(0, 2**62))
    objective = _objective_for(
        dataset, seed=sample_seed, im_samples=im_samples, workers=workers
    )
    algorithms = list(algorithms)
    if include_optimal and "BSM-Optimal" not in algorithms:
        algorithms.append("BSM-Optimal")
    if objective.num_groups != 2 and "SMSC" in algorithms:
        algorithms.remove("SMSC")  # matches the paper: SMSC needs c = 2
    greedy_res = greedy_utility(objective, k)
    saturate_res = saturate(objective, k)
    references = {
        "opt_f_approx": greedy_res.utility,
        "opt_g_approx": saturate_res.fairness,
    }
    exact_opt: Optional[dict[str, float]] = None
    if include_optimal:
        from repro.core.optimal import bsm_optimal

        opt0 = bsm_optimal(objective, k, 0.0, backend=ilp_backend)
        references["opt_f"] = opt0.extra["opt_f"]
        references["opt_g"] = opt0.extra["opt_g"]
        exact_opt = {
            "opt_f": opt0.extra["opt_f"],
            "opt_g": opt0.extra["opt_g"],
        }
    rows: list[ExperimentRow] = []
    for name in algorithms:
        for tau in taus:
            if name not in TAU_AWARE and rows and any(
                r.algorithm == name for r in rows
            ):
                # Flat baselines: reuse the single measurement at every tau.
                base = next(r for r in rows if r.algorithm == name)
                rows.append(
                    ExperimentRow(
                        algorithm=name,
                        parameter="tau",
                        value=float(tau),
                        utility=base.utility,
                        fairness=base.fairness,
                        runtime=base.runtime,
                        oracle_calls=base.oracle_calls,
                        solution_size=base.solution_size,
                        feasible=base.feasible,
                        extra=dict(base.extra),
                    )
                )
                continue
            result = _run_algorithm(
                name, objective, k, float(tau),
                greedy_res=greedy_res, saturate_res=saturate_res,
                epsilon=epsilon, ilp_backend=ilp_backend,
                exact_opt=exact_opt,
            )
            f_val, g_val = _score(
                dataset, result,
                mc_simulations=mc_simulations,
                seed=mc_seed,
                workers=workers,
            )
            rows.append(
                ExperimentRow(
                    algorithm=name,
                    parameter="tau",
                    value=float(tau),
                    utility=f_val,
                    fairness=g_val,
                    runtime=result.runtime,
                    oracle_calls=result.oracle_calls,
                    solution_size=result.size,
                    feasible=result.feasible,
                    extra=dict(result.extra),
                )
            )
    return SweepResult(
        dataset=dataset.name, parameter="tau", rows=rows, references=references
    )


def sweep_k(
    dataset: Dataset,
    ks: Sequence[int],
    tau: float = 0.8,
    *,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    epsilon: float = 0.05,
    im_samples: int = 2_000,
    mc_simulations: int = 1_000,
    seed: SeedLike = 0,
    workers: Optional[int] = None,
) -> SweepResult:
    """Vary the solution size ``k`` at fixed ``tau`` (Figs. 4/6/8/11).

    ``workers`` spreads RR sampling and Monte-Carlo evaluation over a
    process pool, exactly as in :func:`sweep_tau`.
    """
    rng = as_generator(seed)
    sample_seed = int(rng.integers(0, 2**62))
    mc_seed = int(rng.integers(0, 2**62))
    objective = _objective_for(
        dataset, seed=sample_seed, im_samples=im_samples, workers=workers
    )
    algorithms = list(algorithms)
    if objective.num_groups != 2 and "SMSC" in algorithms:
        algorithms.remove("SMSC")
    rows: list[ExperimentRow] = []
    references: dict[str, float] = {}
    for k in ks:
        greedy_res = greedy_utility(objective, int(k))
        saturate_res = saturate(objective, int(k))
        references[f"opt_g_approx@k={k}"] = saturate_res.fairness
        for name in algorithms:
            result = _run_algorithm(
                name, objective, int(k), float(tau),
                greedy_res=greedy_res, saturate_res=saturate_res,
                epsilon=epsilon, ilp_backend="branch-and-bound",
            )
            f_val, g_val = _score(
                dataset, result,
                mc_simulations=mc_simulations,
                seed=mc_seed,
                workers=workers,
            )
            rows.append(
                ExperimentRow(
                    algorithm=name,
                    parameter="k",
                    value=float(k),
                    utility=f_val,
                    fairness=g_val,
                    runtime=result.runtime,
                    oracle_calls=result.oracle_calls,
                    solution_size=result.size,
                    feasible=result.feasible,
                    extra=dict(result.extra),
                )
            )
    return SweepResult(
        dataset=dataset.name, parameter="k", rows=rows, references=references
    )
