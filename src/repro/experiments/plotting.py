"""Terminal (ASCII) charts for sweep results.

The paper communicates its evaluation through line plots (utility /
fairness / runtime against ``tau`` or ``k``). The benchmark harness is
text-only, so this module renders comparable line charts directly in the
terminal: one character column per x-grid point, one glyph per
algorithm, a shared y-axis. Charts are deterministic strings —
reporting code and tests can assert on them.

Only standard ASCII is emitted so the output survives log files, CI
consoles, and ``EXPERIMENTS.md`` code fences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.experiments.harness import SweepResult

#: Stable glyph assignment: the paper's legend order, then extras.
GLYPHS = "ox+*#@%&"


@dataclass(frozen=True)
class Series:
    """One named line: ``points`` is a list of (x, y) pairs."""

    label: str
    points: tuple[tuple[float, float], ...]

    @classmethod
    def make(
        cls, label: str, points: Sequence[tuple[float, float]]
    ) -> "Series":
        return cls(label=label, points=tuple(points))


def _format_number(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.1e}"
    return f"{value:.3g}"


def ascii_chart(
    series: Sequence[Series],
    *,
    title: str = "",
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    logy: bool = False,
) -> str:
    """Render line series as a fixed-size ASCII chart.

    Points are nearest-neighbour snapped onto a ``width x height`` cell
    grid; later series overwrite earlier ones on collisions (the legend
    order therefore mirrors paint order). ``logy`` plots ``log10(y)``,
    the scale the paper uses for runtime panels.
    """
    if width < 10 or height < 4:
        raise ValueError("chart must be at least 10x4 cells")
    drawable = [s for s in series if s.points]
    if not drawable:
        return f"{title}\n(empty chart: no series)"
    xs = np.array([x for s in drawable for x, _ in s.points], dtype=float)
    ys = np.array([y for s in drawable for _, y in s.points], dtype=float)
    if logy:
        floor = max(ys[ys > 0].min() if np.any(ys > 0) else 1e-12, 1e-12)
        ys_t = np.log10(np.maximum(ys, floor))
    else:
        ys_t = ys
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys_t.min()), float(ys_t.max())
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, line in enumerate(drawable):
        glyph = GLYPHS[index % len(GLYPHS)]
        for x, y in line.points:
            y_val = float(y)
            if logy:
                y_val = float(
                    np.log10(max(y_val, 1e-12))
                )
            col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((y_val - y_lo) / (y_hi - y_lo) * (height - 1)))
            grid[height - 1 - row][col] = glyph
    top = _format_number(10**y_hi if logy else y_hi)
    bottom = _format_number(10**y_lo if logy else y_lo)
    margin = max(len(top), len(bottom), len(y_label)) + 1
    lines: list[str] = []
    if title:
        lines.append(title)
    for r, row_cells in enumerate(grid):
        if r == 0:
            prefix = top.rjust(margin)
        elif r == height - 1:
            prefix = bottom.rjust(margin)
        elif r == height // 2:
            prefix = y_label.rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row_cells)}")
    lines.append(" " * margin + "+" + "-" * width)
    left = _format_number(x_lo)
    right = _format_number(x_hi)
    gap = max(width - len(left) - len(right) - len(x_label), 2)
    half = gap // 2
    lines.append(
        " " * (margin + 1)
        + left
        + " " * half
        + x_label
        + " " * (gap - half)
        + right
    )
    legend = "  ".join(
        f"{GLYPHS[i % len(GLYPHS)]}={s.label}" for i, s in enumerate(drawable)
    )
    lines.append(" " * (margin + 1) + legend)
    return "\n".join(lines)


def sweep_chart(
    sweep: SweepResult,
    metric: str = "utility",
    *,
    algorithms: Optional[Sequence[str]] = None,
    width: int = 60,
    height: int = 16,
) -> str:
    """Chart one metric of a harness sweep, one line per algorithm.

    ``metric`` is any numeric :class:`repro.experiments.harness.
    ExperimentRow` field (``utility``, ``fairness``, ``runtime``,
    ``oracle_calls``); runtime is drawn on a log axis like the paper's
    time panels.
    """
    names = list(algorithms) if algorithms else sweep.algorithms()
    series = [
        Series.make(name, sweep.series(name, metric)) for name in names
    ]
    return ascii_chart(
        series,
        title=f"{sweep.dataset}: {metric} vs {sweep.parameter}",
        width=width,
        height=height,
        x_label=sweep.parameter,
        y_label=metric[:7],
        logy=(metric == "runtime"),
    )
