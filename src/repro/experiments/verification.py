"""Machine-checkable versions of the paper's qualitative claims.

EXPERIMENTS.md verifies each figure against the published *findings*
(trade-off shape, algorithm ordering, constraint satisfaction) rather
than absolute values. This module turns those findings into predicates
over :class:`repro.experiments.harness.SweepResult` so that benches and
tests can assert them instead of eyeballing series:

* :func:`check_tradeoff_shape` — claim 1: for a tau-aware algorithm,
  fairness trends up and utility trends down as tau grows;
* :func:`check_flat_baseline` — claim 1 (baselines): Greedy/Saturate/
  SMSC curves are constant in tau;
* :func:`check_weak_constraint` — claim 3: ``g(S) >= tau * OPT'_g``;
* :func:`check_dominance` — claim 2: one algorithm ≥ another on a
  metric across the sweep, with a tolerated violation budget;
* :func:`verify_paper_claims` — the bundle the MC/FL figures must pass.

Each check returns a :class:`ClaimReport` (never raises), so callers
decide whether a violation is fatal (tests) or reportable (benches).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.harness import SweepResult

#: Absolute slack applied to every metric comparison: sweeps are built
#: from greedy/sampled solvers whose exact values carry float noise.
DEFAULT_ATOL = 1e-9


@dataclass
class ClaimReport:
    """Outcome of one claim check over a sweep."""

    claim: str
    holds: bool
    violations: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        status = "PASS" if self.holds else "FAIL"
        body = "" if self.holds else " — " + "; ".join(self.violations[:5])
        return f"[{status}] {self.claim}{body}"


def _series(sweep: SweepResult, algorithm: str, metric: str) -> list[tuple[float, float]]:
    points = sweep.series(algorithm, metric)
    if not points:
        raise KeyError(
            f"algorithm {algorithm!r} has no rows in sweep {sweep.dataset!r}"
        )
    return sorted(points)


def check_tradeoff_shape(
    sweep: SweepResult,
    algorithm: str,
    *,
    slack: float = 0.05,
) -> ClaimReport:
    """Fairness trends up / utility trends down along the tau grid.

    Greedy algorithms are not strictly monotone point to point, so the
    check compares the *ends* of the sweep and tolerates interior dips
    up to ``slack`` (relative to the series range, guarding against
    noise on nearly-flat series).
    """
    fairness = _series(sweep, algorithm, "fairness")
    utility = _series(sweep, algorithm, "utility")
    violations: list[str] = []
    f_lo, f_hi = fairness[0][1], fairness[-1][1]
    if f_hi < f_lo - DEFAULT_ATOL:
        violations.append(
            f"fairness falls end to end ({f_lo:.4f} -> {f_hi:.4f})"
        )
    u_lo, u_hi = utility[0][1], utility[-1][1]
    span = max(abs(u_lo), abs(u_hi), 1e-9)
    if u_hi > u_lo + slack * span:
        violations.append(
            f"utility rises end to end ({u_lo:.4f} -> {u_hi:.4f})"
        )
    return ClaimReport(
        claim=f"{algorithm}: trade-off shape on {sweep.dataset}",
        holds=not violations,
        violations=violations,
    )


def check_flat_baseline(
    sweep: SweepResult, algorithm: str, *, atol: float = DEFAULT_ATOL
) -> ClaimReport:
    """A tau-unaware baseline reports the same solution at every tau."""
    violations: list[str] = []
    for metric in ("utility", "fairness"):
        values = [v for _, v in _series(sweep, algorithm, metric)]
        if max(values) - min(values) > atol:
            violations.append(
                f"{metric} varies across tau "
                f"({min(values):.4f}..{max(values):.4f})"
            )
    return ClaimReport(
        claim=f"{algorithm}: flat in tau on {sweep.dataset}",
        holds=not violations,
        violations=violations,
    )


def check_weak_constraint(
    sweep: SweepResult,
    algorithm: str,
    *,
    atol: float = 1e-6,
    allowed_violations: int = 0,
) -> ClaimReport:
    """``g(S) >= tau * OPT'_g`` at every tau point (claim 3).

    ``allowed_violations`` loosens the check for influence sweeps,
    where the paper itself observes occasional breaks from estimation
    error.
    """
    opt_g = sweep.references.get("opt_g_approx")
    violations: list[str] = []
    if opt_g is None:
        violations.append("sweep lacks the opt_g_approx reference")
    else:
        for tau, g_val in _series(sweep, algorithm, "fairness"):
            if g_val < tau * opt_g - atol:
                violations.append(
                    f"tau={tau}: g={g_val:.4f} < {tau * opt_g:.4f}"
                )
    holds = len(violations) <= allowed_violations and opt_g is not None
    return ClaimReport(
        claim=(
            f"{algorithm}: weak constraint g >= tau*OPT'_g on "
            f"{sweep.dataset}"
        ),
        holds=holds,
        violations=violations,
    )


def check_dominance(
    sweep: SweepResult,
    better: str,
    worse: str,
    metric: str = "utility",
    *,
    allowed_violations: int = 0,
    atol: float = DEFAULT_ATOL,
) -> ClaimReport:
    """``better`` ≥ ``worse`` on ``metric`` across the sweep (claim 2)."""
    b = dict(_series(sweep, better, metric))
    w = dict(_series(sweep, worse, metric))
    violations = [
        f"{sweep.parameter}={point}: {b[point]:.4f} < {w[point]:.4f}"
        for point in sorted(set(b) & set(w))
        if b[point] < w[point] - atol
    ]
    return ClaimReport(
        claim=f"{better} >= {worse} on {metric} ({sweep.dataset})",
        holds=len(violations) <= allowed_violations,
        violations=violations,
    )


def verify_paper_claims(
    sweep: SweepResult,
    *,
    bsm_algorithms: tuple[str, str] = ("BSM-Saturate", "BSM-TSGreedy"),
    flat_baselines: tuple[str, ...] = ("Greedy", "Saturate"),
    dominance_slack: int = 1,
) -> list[ClaimReport]:
    """Run the standard bundle of claims for one MC/FL tau sweep.

    Returns every report (pass and fail); callers typically assert
    ``all(r.holds for r in reports)``. ``dominance_slack`` allows one
    crossover point in the Saturate-vs-TSGreedy comparison, matching
    the "almost all tau values" wording of the paper.
    """
    present = set(sweep.algorithms())
    reports: list[ClaimReport] = []
    for name in flat_baselines:
        if name in present:
            reports.append(check_flat_baseline(sweep, name))
    for name in dict.fromkeys(bsm_algorithms):
        if name in present:
            reports.append(check_tradeoff_shape(sweep, name))
            reports.append(check_weak_constraint(sweep, name))
    if bsm_algorithms[0] != bsm_algorithms[1] and all(
        name in present for name in bsm_algorithms
    ):
        reports.append(
            check_dominance(
                sweep,
                bsm_algorithms[0],
                bsm_algorithms[1],
                "utility",
                allowed_violations=dominance_slack,
            )
        )
    return reports
