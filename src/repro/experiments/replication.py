"""Seed-replicated sweeps with aggregate statistics.

The paper reports single-run curves; this reproduction replaces its real
datasets with synthetic substitutes, so every claim in EXPERIMENTS.md is
backed by *replicated* runs instead: the same sweep repeated under
several dataset/algorithm seeds, aggregated with
:mod:`repro.utils.stats`, and compared with the nonparametric sign test.

Typical use (what the EXPERIMENTS.md dominance claims ran)::

    rep = replicate_tau_sweep(
        "rand-mc-c2", k=5, taus=(0.1, 0.5, 0.9), seeds=range(5)
    )
    rep.aggregate("BSM-Saturate", 0.5, "utility")   # mean ± std
    rep.compare("BSM-Saturate", "BSM-TSGreedy", "utility")  # p-value
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.datasets.registry import load_dataset
from repro.experiments.harness import DEFAULT_ALGORITHMS, SweepResult, sweep_tau
from repro.utils.stats import Aggregate, aggregate, paired_sign_test


@dataclass
class ReplicatedSweep:
    """Tau-sweep results across seeds, indexed for aggregation."""

    dataset: str
    parameter: str
    seeds: tuple[int, ...]
    sweeps: list[SweepResult] = field(default_factory=list)

    def values(
        self, algorithm: str, value: float, metric: str = "utility"
    ) -> list[float]:
        """One metric at one parameter point, across all seeds."""
        out: list[float] = []
        for sweep in self.sweeps:
            series = dict(sweep.series(algorithm, metric))
            if value not in series:
                raise KeyError(
                    f"{algorithm} has no point at {self.parameter}={value}"
                )
            out.append(series[value])
        return out

    def aggregate(
        self, algorithm: str, value: float, metric: str = "utility"
    ) -> Aggregate:
        """Mean/std/min/max of one metric at one parameter point."""
        return aggregate(self.values(algorithm, value, metric))

    def compare(
        self,
        first: str,
        second: str,
        metric: str = "utility",
        *,
        values: Optional[Sequence[float]] = None,
    ) -> float:
        """Sign-test p-value for "``first`` beats ``second`` on
        ``metric``", pairing runs by (seed, parameter point)."""
        points = values
        if points is None:
            points = sorted(
                {row.value for row in self.sweeps[0].rows}
            )
        a: list[float] = []
        b: list[float] = []
        for point in points:
            a.extend(self.values(first, point, metric))
            b.extend(self.values(second, point, metric))
        return paired_sign_test(a, b)

    def algorithms(self) -> list[str]:
        return self.sweeps[0].algorithms() if self.sweeps else []


def replicate_tau_sweep(
    dataset_name: str,
    k: int,
    taus: Sequence[float],
    seeds: Sequence[int],
    *,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    im_samples: int = 2_000,
    mc_simulations: int = 0,
    **dataset_overrides: object,
) -> ReplicatedSweep:
    """Run :func:`repro.experiments.harness.sweep_tau` once per seed.

    Each seed re-generates the dataset *and* re-seeds the randomized
    solver subroutines, so the replicate spread covers both sources of
    variation. ``dataset_overrides`` pass through to the dataset builder
    (e.g. ``num_nodes=150`` to shrink a sweep).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    rep = ReplicatedSweep(
        dataset=dataset_name,
        parameter="tau",
        seeds=tuple(int(s) for s in seeds),
    )
    for seed in rep.seeds:
        data = load_dataset(dataset_name, seed=seed, **dataset_overrides)
        rep.sweeps.append(
            sweep_tau(
                data,
                k,
                taus,
                algorithms=algorithms,
                im_samples=im_samples,
                mc_simulations=mc_simulations,
                seed=seed,
            )
        )
    return rep
