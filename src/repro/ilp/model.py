"""Minimal linear-programming modelling layer.

Supports exactly what the Appendix-A formulations need: continuous and
binary variables, linear expressions built with ``+``/``-``/``*``,
``<=``/``>=``/``==`` constraints, and maximisation objectives. Models
export to the dense standard form consumed by the solvers:

    maximise c @ x   s.t.   A_ub @ x <= b_ub,  A_eq @ x == b_eq,
                            lb <= x <= ub,  x_j integral for j in integers
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Union

import numpy as np
from scipy import sparse

Number = Union[int, float]


class LinearExpr:
    """Immutable linear expression ``sum_j coeff_j x_j + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(
        self,
        coeffs: Optional[Mapping[int, float]] = None,
        constant: float = 0.0,
    ) -> None:
        self.coeffs: dict[int, float] = dict(coeffs or {})
        self.constant = float(constant)

    # -- arithmetic --------------------------------------------------------
    def _combined(self, other: "LinearExpr | Variable | Number", sign: float) -> "LinearExpr":
        other = _as_expr(other)
        coeffs = dict(self.coeffs)
        for j, c in other.coeffs.items():
            coeffs[j] = coeffs.get(j, 0.0) + sign * c
        return LinearExpr(coeffs, self.constant + sign * other.constant)

    def __add__(self, other: "LinearExpr | Variable | Number") -> "LinearExpr":
        return self._combined(other, 1.0)

    __radd__ = __add__

    def __sub__(self, other: "LinearExpr | Variable | Number") -> "LinearExpr":
        return self._combined(other, -1.0)

    def __rsub__(self, other: "LinearExpr | Variable | Number") -> "LinearExpr":
        return _as_expr(other)._combined(self, -1.0)

    def __mul__(self, factor: Number) -> "LinearExpr":
        factor = float(factor)
        return LinearExpr(
            {j: c * factor for j, c in self.coeffs.items()},
            self.constant * factor,
        )

    __rmul__ = __mul__

    def __neg__(self) -> "LinearExpr":
        return self * -1.0

    # -- comparisons build constraints --------------------------------------
    def __le__(self, other: "LinearExpr | Variable | Number") -> "Constraint":
        return Constraint(self - other, "<=")

    def __ge__(self, other: "LinearExpr | Variable | Number") -> "Constraint":
        return Constraint(self - other, ">=")

    def __eq__(self, other: object) -> "Constraint":  # type: ignore[override]
        return Constraint(self - other, "==")  # type: ignore[operator]

    __hash__ = None  # type: ignore[assignment]

    def value(self, x: np.ndarray) -> float:
        """Evaluate at a point ``x`` (full variable vector)."""
        return self.constant + sum(c * x[j] for j, c in self.coeffs.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        terms = " + ".join(f"{c:g}*x{j}" for j, c in sorted(self.coeffs.items()))
        return f"LinearExpr({terms or '0'} + {self.constant:g})"


@dataclass(frozen=True)
class Variable:
    """Handle to one model variable; participates in expressions."""

    index: int
    name: str
    lower: float
    upper: float
    is_integer: bool

    def expr(self) -> LinearExpr:
        return LinearExpr({self.index: 1.0})

    def __add__(self, other: object) -> LinearExpr:
        return self.expr() + other  # type: ignore[operator]

    __radd__ = __add__

    def __sub__(self, other: object) -> LinearExpr:
        return self.expr() - other  # type: ignore[operator]

    def __rsub__(self, other: object) -> LinearExpr:
        return _as_expr(other) - self.expr()  # type: ignore[arg-type]

    def __mul__(self, factor: Number) -> LinearExpr:
        return self.expr() * factor

    __rmul__ = __mul__

    def __neg__(self) -> LinearExpr:
        return -self.expr()

    def __le__(self, other: object) -> "Constraint":
        return self.expr() <= other  # type: ignore[operator]

    def __ge__(self, other: object) -> "Constraint":
        return self.expr() >= other  # type: ignore[operator]

    def __eq__(self, other: object) -> "Constraint":  # type: ignore[override]
        return self.expr() == other

    __hash__ = object.__hash__


def _as_expr(value: "LinearExpr | Variable | Number") -> LinearExpr:
    if isinstance(value, LinearExpr):
        return value
    if isinstance(value, Variable):
        return value.expr()
    return LinearExpr({}, float(value))


@dataclass
class Constraint:
    """``expr (<=|>=|==) 0`` in canonical form."""

    expr: LinearExpr
    sense: str  # one of "<=", ">=", "=="
    name: str = ""

    def __post_init__(self) -> None:
        if self.sense not in ("<=", ">=", "=="):
            raise ValueError(f"invalid constraint sense {self.sense!r}")


@dataclass
class StandardForm:
    """Sparse matrices for the solvers (see module docstring).

    ``a_ub``/``a_eq`` are CSR matrices — the facility-location ILPs have
    ~``m*n`` linking constraints with two non-zeros each, so dense export
    would cost gigabytes on paper-sized instances.
    """

    c: np.ndarray
    a_ub: "sparse.csr_matrix"
    b_ub: np.ndarray
    a_eq: "sparse.csr_matrix"
    b_eq: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integers: np.ndarray  # indices of integral variables
    objective_constant: float = 0.0


class Model:
    """A maximisation MILP under construction."""

    def __init__(self, name: str = "model") -> None:
        self.name = name
        self._variables: list[Variable] = []
        self._constraints: list[Constraint] = []
        self._objective: LinearExpr = LinearExpr()

    # -- building -----------------------------------------------------------
    def add_variable(
        self,
        name: str = "",
        *,
        lower: float = 0.0,
        upper: float = np.inf,
        integer: bool = False,
    ) -> Variable:
        if lower > upper:
            raise ValueError(f"variable {name!r}: lower {lower} > upper {upper}")
        var = Variable(
            index=len(self._variables),
            name=name or f"x{len(self._variables)}",
            lower=float(lower),
            upper=float(upper),
            is_integer=bool(integer),
        )
        self._variables.append(var)
        return var

    def add_binary(self, name: str = "") -> Variable:
        return self.add_variable(name, lower=0.0, upper=1.0, integer=True)

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        if name:
            constraint.name = name
        self._constraints.append(constraint)
        return constraint

    def add_constraints(self, constraints: Iterable[Constraint]) -> None:
        for con in constraints:
            self.add_constraint(con)

    def set_objective(self, expr: "LinearExpr | Variable") -> None:
        """Set the expression to *maximise*."""
        self._objective = _as_expr(expr)

    # -- introspection ------------------------------------------------------
    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    @property
    def variables(self) -> list[Variable]:
        return list(self._variables)

    @property
    def objective(self) -> LinearExpr:
        return self._objective

    # -- export -------------------------------------------------------------
    def to_standard_form(self) -> StandardForm:
        n = self.num_variables
        c = np.zeros(n)
        for j, coef in self._objective.coeffs.items():
            c[j] = coef
        ub = _SparseBuilder(n)
        eq = _SparseBuilder(n)
        for con in self._constraints:
            rhs = -con.expr.constant
            if con.sense == "<=":
                ub.add_row(con.expr.coeffs, rhs, sign=1.0)
            elif con.sense == ">=":
                ub.add_row(con.expr.coeffs, rhs, sign=-1.0)
            else:
                eq.add_row(con.expr.coeffs, rhs, sign=1.0)
        return StandardForm(
            c=c,
            a_ub=ub.matrix(),
            b_ub=ub.rhs(),
            a_eq=eq.matrix(),
            b_eq=eq.rhs(),
            lower=np.asarray([v.lower for v in self._variables], dtype=float),
            upper=np.asarray([v.upper for v in self._variables], dtype=float),
            integers=np.asarray(
                [v.index for v in self._variables if v.is_integer], dtype=np.int64
            ),
            objective_constant=self._objective.constant,
        )


class _SparseBuilder:
    """Incremental COO -> CSR builder for one constraint block."""

    def __init__(self, num_cols: int) -> None:
        self._num_cols = num_cols
        self._rows: list[int] = []
        self._cols: list[int] = []
        self._data: list[float] = []
        self._rhs: list[float] = []

    def add_row(
        self, coeffs: Mapping[int, float], rhs: float, *, sign: float
    ) -> None:
        r = len(self._rhs)
        for j, coef in coeffs.items():
            self._rows.append(r)
            self._cols.append(j)
            self._data.append(sign * coef)
        self._rhs.append(sign * rhs)

    def matrix(self) -> "sparse.csr_matrix":
        return sparse.csr_matrix(
            (self._data, (self._rows, self._cols)),
            shape=(len(self._rhs), self._num_cols),
        )

    def rhs(self) -> np.ndarray:
        return np.asarray(self._rhs, dtype=float)
