"""Integer linear programming substrate.

The paper solves small maximum-coverage and facility-location BSM
instances to optimality with Gurobi (Appendix A). No commercial solver is
available offline, so this package provides:

* a tiny modelling layer (:mod:`repro.ilp.model`);
* a pure-Python best-first branch & bound over ``scipy.optimize.linprog``
  LP relaxations (:mod:`repro.ilp.branch_and_bound`), with an optional
  ``scipy.optimize.milp`` backend for cross-checking;
* the paper's ILP formulations (:mod:`repro.ilp.formulations`).
"""

from repro.ilp.branch_and_bound import MilpSolution, solve_milp
from repro.ilp.model import Constraint, LinearExpr, Model, Variable
from repro.ilp.formulations import (
    bsm_coverage_ilp,
    bsm_facility_ilp,
    coverage_ilp,
    facility_ilp,
    robust_coverage_ilp,
    robust_facility_ilp,
)

__all__ = [
    "Constraint",
    "LinearExpr",
    "MilpSolution",
    "Model",
    "Variable",
    "bsm_coverage_ilp",
    "bsm_facility_ilp",
    "coverage_ilp",
    "facility_ilp",
    "robust_coverage_ilp",
    "robust_facility_ilp",
    "solve_milp",
]
