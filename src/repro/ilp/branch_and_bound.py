"""MILP solvers: best-first branch & bound, plus a ``scipy.optimize.milp``
backend for cross-validation.

The branch & bound is deliberately classical: solve the LP relaxation
with HiGHS (via ``scipy.optimize.linprog``), branch on the most fractional
integer variable, explore nodes in best-bound order, and prune by the
incumbent. The BSM-Optimal instances (Appendix A) are small — hundreds of
binaries — so no cutting planes or presolve are needed; both backends are
exercised against each other in the tests and the ILP ablation bench.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Optional

import numpy as np
from scipy.optimize import linprog

from repro.errors import InfeasibleError, SolverError, UnboundedError
from repro.ilp.model import Model, StandardForm

#: Tolerance for considering an LP value integral.
INT_TOL = 1e-6
#: Gap (absolute) at which a node is pruned against the incumbent.
PRUNE_TOL = 1e-9


@dataclass
class MilpSolution:
    """Optimal solution of a MILP.

    ``objective`` includes the model's constant term. ``nodes`` counts
    explored branch-and-bound nodes (1 for the milp backend).
    """

    x: np.ndarray
    objective: float
    nodes: int = 0
    backend: str = "branch-and-bound"

    def value(self, var: "Variable") -> float:  # noqa: F821 - doc-only hint
        return float(self.x[var.index])


def solve_milp(
    model: Model,
    *,
    backend: str = "branch-and-bound",
    max_nodes: int = 200_000,
) -> MilpSolution:
    """Solve a :class:`Model` to optimality.

    Parameters
    ----------
    backend:
        ``"branch-and-bound"`` (our solver) or ``"scipy"``
        (``scipy.optimize.milp``).
    max_nodes:
        Node budget for branch & bound; exceeding it raises
        :class:`SolverError` rather than silently returning a bound.
    """
    form = model.to_standard_form()
    if backend == "branch-and-bound":
        return _branch_and_bound(form, max_nodes=max_nodes)
    if backend == "scipy":
        return _scipy_milp(form)
    raise ValueError(f"unknown backend {backend!r}")


# ---------------------------------------------------------------------------
# scipy backend
# ---------------------------------------------------------------------------
def _scipy_milp(form: StandardForm) -> MilpSolution:
    from scipy.optimize import Bounds, LinearConstraint, milp

    n = form.c.size
    constraints = []
    if form.a_ub.shape[0]:
        constraints.append(
            LinearConstraint(form.a_ub, -np.inf, form.b_ub)
        )
    if form.a_eq.shape[0]:
        constraints.append(LinearConstraint(form.a_eq, form.b_eq, form.b_eq))
    integrality = np.zeros(n)
    integrality[form.integers] = 1
    res = milp(
        c=-form.c,  # scipy minimises
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(form.lower, form.upper),
    )
    if res.status == 2:
        raise InfeasibleError("MILP is infeasible")
    if res.status != 0 or res.x is None:
        raise SolverError(f"scipy.optimize.milp failed: {res.message}")
    x = np.asarray(res.x, dtype=float)
    return MilpSolution(
        x=x,
        objective=float(form.c @ x + form.objective_constant),
        nodes=1,
        backend="scipy",
    )


# ---------------------------------------------------------------------------
# branch & bound backend
# ---------------------------------------------------------------------------
@dataclass(order=True)
class _Node:
    # Best-first: heap orders by the negated LP bound (max-heap behaviour).
    sort_key: float
    counter: int
    lower: np.ndarray = field(compare=False)
    upper: np.ndarray = field(compare=False)
    bound: float = field(compare=False, default=np.inf)


def _solve_relaxation(
    form: StandardForm, lower: np.ndarray, upper: np.ndarray
) -> Optional[tuple[np.ndarray, float]]:
    """LP relaxation; ``None`` when infeasible.

    Constraint matrices stay sparse all the way into HiGHS — the FL ILPs
    carry ~m*n linking rows that would not fit in memory densely.
    """
    res = linprog(
        c=-form.c,  # linprog minimises
        A_ub=form.a_ub if form.a_ub.shape[0] else None,
        b_ub=form.b_ub if form.a_ub.shape[0] else None,
        A_eq=form.a_eq if form.a_eq.shape[0] else None,
        b_eq=form.b_eq if form.a_eq.shape[0] else None,
        bounds=np.column_stack([lower, upper]),
        method="highs",
    )
    if res.status == 2:
        return None
    if res.status == 3:
        raise UnboundedError("LP relaxation is unbounded")
    if res.status != 0 or res.x is None:
        raise SolverError(f"linprog failed: {res.message}")
    return np.asarray(res.x, dtype=float), float(-res.fun)


def _most_fractional(x: np.ndarray, integers: np.ndarray) -> int:
    """Index of the integer variable whose value is closest to 0.5 mod 1."""
    frac = np.abs(x[integers] - np.round(x[integers]))  # distance to integrality
    return int(integers[int(np.argmax(frac))])


def _is_integral(x: np.ndarray, integers: np.ndarray) -> bool:
    if integers.size == 0:
        return True
    frac = np.abs(x[integers] - np.round(x[integers]))
    return bool(np.all(frac <= INT_TOL))


def _branch_and_bound(form: StandardForm, *, max_nodes: int) -> MilpSolution:
    counter = itertools.count()
    root = _solve_relaxation(form, form.lower, form.upper)
    if root is None:
        raise InfeasibleError("MILP is infeasible (root LP)")
    x0, bound0 = root
    heap: list[_Node] = [
        _Node(-bound0, next(counter), form.lower.copy(), form.upper.copy(), bound0)
    ]
    best_x: Optional[np.ndarray] = None
    best_val = -np.inf
    nodes = 0
    while heap:
        node = heapq.heappop(heap)
        if node.bound <= best_val + PRUNE_TOL:
            continue  # cannot beat the incumbent
        nodes += 1
        if nodes > max_nodes:
            raise SolverError(
                f"branch & bound exceeded the node budget ({max_nodes})"
            )
        relaxed = _solve_relaxation(form, node.lower, node.upper)
        if relaxed is None:
            continue
        x, bound = relaxed
        if bound <= best_val + PRUNE_TOL:
            continue
        if _is_integral(x, form.integers):
            x = x.copy()
            x[form.integers] = np.round(x[form.integers])
            value = float(form.c @ x)
            if value > best_val:
                best_val = value
                best_x = x
            continue
        j = _most_fractional(x, form.integers)
        floor_val = np.floor(x[j] + INT_TOL)
        # Down branch: x_j <= floor.
        down_upper = node.upper.copy()
        down_upper[j] = floor_val
        if node.lower[j] <= down_upper[j]:
            heapq.heappush(
                heap,
                _Node(-bound, next(counter), node.lower.copy(), down_upper, bound),
            )
        # Up branch: x_j >= floor + 1.
        up_lower = node.lower.copy()
        up_lower[j] = floor_val + 1
        if up_lower[j] <= node.upper[j]:
            heapq.heappush(
                heap,
                _Node(-bound, next(counter), up_lower, node.upper.copy(), bound),
            )
    if best_x is None:
        raise InfeasibleError("MILP has no integral feasible point")
    return MilpSolution(
        x=best_x,
        objective=float(best_val + form.objective_constant),
        nodes=nodes,
        backend="branch-and-bound",
    )
