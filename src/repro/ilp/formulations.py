"""Appendix-A ILP formulations for maximum coverage and facility location.

Each builder returns ``(model, x_vars)`` where ``x_vars[loc]`` indicates
whether item ``loc`` joins the solution; the BSM variants additionally take
``opt_g`` (the robust optimum, produced by the corresponding robust ILP)
and the balance factor ``tau``.

The formulations intentionally mirror Eqs. 5–7 of the paper, including the
coverage indicator trick (``sum_{u_j in S_l} x_l >= y_j``) and the
assignment form of facility location (``y_jl <= x_l``). Influence
maximization has no ILP (computing the objective is #P-hard), matching the
paper's omission of BSM-Optimal for IM.
"""

from __future__ import annotations

import numpy as np

from repro.ilp.model import LinearExpr, Model, Variable
from repro.problems.coverage import CoverageObjective
from repro.problems.facility import FacilityLocationObjective
from repro.utils.validation import check_fraction, check_positive_int


# ---------------------------------------------------------------------------
# Maximum coverage (Eq. 5), robust MC (Eq. 6) and BSM-MC
# ---------------------------------------------------------------------------
def _coverage_base(
    objective: CoverageObjective, k: int, model: Model
) -> tuple[list[Variable], list[Variable]]:
    """Common MC skeleton: x (sets), y (user covered), cardinality + linking.

    The paper declares the ``y_j`` binary (Eq. 5); we relax them to
    ``[0, 1]`` continuous, which is equivalent: every objective/constraint
    is non-decreasing in ``y_j``, so at an optimum ``y_j`` sits at
    ``min(1, sum of selected sets containing j)``, which is integral when
    ``x`` is. Branching then only happens on the ``n`` set variables.
    """
    n, m = objective.num_items, objective.num_users
    x = [model.add_binary(f"x{loc}") for loc in range(n)]
    y = [model.add_variable(f"y{j}", lower=0.0, upper=1.0) for j in range(m)]
    model.add_constraint(
        LinearExpr({v.index: 1.0 for v in x}) <= k, name="cardinality"
    )
    # y_j <= sum of x_l over sets containing user j.
    containing: list[list[int]] = [[] for _ in range(m)]
    for loc, members in enumerate(objective.sets):
        for u in members:
            containing[int(u)].append(loc)
    for j in range(m):
        cover_expr = LinearExpr({x[loc].index: 1.0 for loc in containing[j]})
        model.add_constraint(cover_expr >= y[j], name=f"cover{j}")
    return x, y


def coverage_ilp(
    objective: CoverageObjective, k: int
) -> tuple[Model, list[Variable]]:
    """Eq. 5: maximise the average coverage ``sum_j y_j / m``."""
    check_positive_int(k, "k")
    model = Model("max-coverage")
    x, y = _coverage_base(objective, k, model)
    m = objective.num_users
    model.set_objective(
        LinearExpr({v.index: 1.0 / m for v in y})
    )
    return model, x


def robust_coverage_ilp(
    objective: CoverageObjective, k: int
) -> tuple[Model, list[Variable]]:
    """Eq. 6: maximise ``w`` = the minimum group-average coverage."""
    check_positive_int(k, "k")
    model = Model("robust-max-coverage")
    x, y = _coverage_base(objective, k, model)
    w = model.add_variable("w", lower=0.0, upper=1.0)
    labels = objective.user_groups
    sizes = objective.group_sizes
    for i in range(objective.num_groups):
        members = np.flatnonzero(labels == i)
        expr = LinearExpr({y[int(j)].index: 1.0 / sizes[i] for j in members})
        model.add_constraint(expr >= w, name=f"group{i}")
    model.set_objective(w.expr())
    return model, x


def bsm_coverage_ilp(
    objective: CoverageObjective,
    k: int,
    tau: float,
    opt_g: float,
) -> tuple[Model, list[Variable]]:
    """BSM-MC: Eq. 5 objective + per-group constraints ``f_i >= tau*OPT_g``."""
    check_positive_int(k, "k")
    check_fraction(tau, "tau")
    model, x = coverage_ilp(objective, k)
    # The y variables are the second block added by _coverage_base.
    y_offset = objective.num_items
    labels = objective.user_groups
    sizes = objective.group_sizes
    threshold = tau * float(opt_g)
    for i in range(objective.num_groups):
        members = np.flatnonzero(labels == i)
        expr = LinearExpr(
            {y_offset + int(j): 1.0 / sizes[i] for j in members}
        )
        model.add_constraint(expr >= threshold, name=f"bsm-group{i}")
    return model, x


# ---------------------------------------------------------------------------
# Facility location (Eq. 7), robust FL and BSM-FL
# ---------------------------------------------------------------------------
def _facility_base(
    objective: FacilityLocationObjective, k: int, model: Model
) -> tuple[list[Variable], list[list[Variable]]]:
    """Common FL skeleton: open vars x, assignment vars y_jl, linking.

    As with coverage, the assignment variables are relaxed to continuous
    ``[0, 1]``: benefits are non-negative and all constraints non-
    decreasing in ``y``, so with binary ``x`` an optimal ``y`` assigns each
    user wholly to their best open facility. Only the ``n`` open variables
    branch.
    """
    m, n = objective.benefits.shape
    x = [model.add_binary(f"x{loc}") for loc in range(n)]
    y = [
        [model.add_variable(f"y{j}_{loc}", lower=0.0, upper=1.0) for loc in range(n)]
        for j in range(m)
    ]
    model.add_constraint(
        LinearExpr({v.index: 1.0 for v in x}) <= k, name="cardinality"
    )
    for j in range(m):
        model.add_constraint(
            LinearExpr({v.index: 1.0 for v in y[j]}) <= 1.0,
            name=f"assign{j}",
        )
        for loc in range(n):
            model.add_constraint(y[j][loc] <= x[loc], name=f"open{j}_{loc}")
    return x, y


def _group_benefit_expr(
    objective: FacilityLocationObjective,
    y: list[list[Variable]],
    group: int,
) -> LinearExpr:
    """``(1/m_i) sum_{u_j in U_i} sum_l b_jl y_jl`` for one group."""
    labels = objective.user_groups
    sizes = objective.group_sizes
    benefits = objective.benefits
    coeffs: dict[int, float] = {}
    for j in np.flatnonzero(labels == group):
        for loc in range(benefits.shape[1]):
            coeffs[y[int(j)][loc].index] = float(benefits[j, loc]) / sizes[group]
    return LinearExpr(coeffs)


def facility_ilp(
    objective: FacilityLocationObjective, k: int
) -> tuple[Model, list[Variable]]:
    """Eq. 7: maximise the average benefit ``sum_{j,l} b_jl y_jl / m``."""
    check_positive_int(k, "k")
    model = Model("facility-location")
    x, y = _facility_base(objective, k, model)
    m, n = objective.benefits.shape
    coeffs = {
        y[j][loc].index: float(objective.benefits[j, loc]) / m
        for j in range(m)
        for loc in range(n)
        if objective.benefits[j, loc] > 0
    }
    model.set_objective(LinearExpr(coeffs))
    return model, x


def robust_facility_ilp(
    objective: FacilityLocationObjective, k: int
) -> tuple[Model, list[Variable]]:
    """Robust FL: maximise ``w``, the minimum group-average benefit."""
    check_positive_int(k, "k")
    model = Model("robust-facility-location")
    x, y = _facility_base(objective, k, model)
    upper = float(objective.benefits.max()) if objective.benefits.size else 1.0
    w = model.add_variable("w", lower=0.0, upper=upper)
    for i in range(objective.num_groups):
        model.add_constraint(
            _group_benefit_expr(objective, y, i) >= w, name=f"group{i}"
        )
    model.set_objective(w.expr())
    return model, x


def bsm_facility_ilp(
    objective: FacilityLocationObjective,
    k: int,
    tau: float,
    opt_g: float,
) -> tuple[Model, list[Variable]]:
    """BSM-FL: Eq. 7 objective + ``f_i >= tau*OPT_g`` for every group."""
    check_positive_int(k, "k")
    check_fraction(tau, "tau")
    model = Model("bsm-facility-location")
    x, y = _facility_base(objective, k, model)
    m, n = objective.benefits.shape
    coeffs = {
        y[j][loc].index: float(objective.benefits[j, loc]) / m
        for j in range(m)
        for loc in range(n)
        if objective.benefits[j, loc] > 0
    }
    model.set_objective(LinearExpr(coeffs))
    threshold = tau * float(opt_g)
    for i in range(objective.num_groups):
        model.add_constraint(
            _group_benefit_expr(objective, y, i) >= threshold,
            name=f"bsm-group{i}",
        )
    return model, x
